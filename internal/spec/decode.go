package spec

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ustore/internal/faults"
)

// decoder walks a node tree into a Spec, rejecting unknown fields and type
// mismatches with the node's position. It never panics: FuzzSpecParse
// holds it to that.
type decoder struct {
	file string
}

func (d *decoder) errf(n *Node, format string, args ...any) error {
	return errAt(d.file, n.Line, n.Col, format, args...)
}

func (d *decoder) scalar(n *Node, field string) (*Node, error) {
	if n.Kind != KindScalar {
		return nil, d.errf(n, "field %s: expected a scalar, got a %s", field, n.Kind)
	}
	return n, nil
}

func (d *decoder) str(n *Node, field string) (string, error) {
	sc, err := d.scalar(n, field)
	if err != nil {
		return "", err
	}
	return sc.Val, nil
}

func (d *decoder) boolVal(n *Node, field string) (bool, error) {
	sc, err := d.scalar(n, field)
	if err != nil {
		return false, err
	}
	if sc.Quoted {
		return false, d.errf(n, "field %s: expected true or false, got the string %q", field, sc.Val)
	}
	switch sc.Val {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, d.errf(n, "field %s: expected true or false, got %q", field, sc.Val)
}

func (d *decoder) intVal(n *Node, field string) (int64, error) {
	sc, err := d.scalar(n, field)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseInt(sc.Val, 10, 64)
	if perr != nil || sc.Quoted {
		return 0, d.errf(n, "field %s: cannot parse %q as an integer", field, sc.Val)
	}
	return v, nil
}

func (d *decoder) floatVal(n *Node, field string) (float64, error) {
	sc, err := d.scalar(n, field)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseFloat(sc.Val, 64)
	if perr != nil || sc.Quoted || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, d.errf(n, "field %s: cannot parse %q as a number", field, sc.Val)
	}
	return v, nil
}

// section returns key's value when it is a mapping.
func (d *decoder) section(n *Node, key string) (*Node, error) {
	c := n.child(key)
	if c == nil {
		return nil, nil
	}
	if c.Kind != KindMap {
		return nil, d.errf(c, "section %s: expected nested keys, got a %s", key, c.Kind)
	}
	return c, nil
}

// eachField iterates a mapping's entries through fn; fn returns false for
// a key it does not know, which becomes the positional unknown-field
// error (with the section name, so typos are easy to place).
func (d *decoder) eachField(n *Node, section string, fn func(key string, v *Node) (bool, error)) error {
	for i, key := range n.Keys {
		known, err := fn(key, n.Children[i])
		if err != nil {
			return err
		}
		if !known {
			return errAt(d.file, n.KeyLines[i], n.KeyCols[i], "unknown field %q in %s", key, section)
		}
	}
	return nil
}

// DecodeSpec decodes a parsed document (sans grid) into a defaulted,
// validated Spec.
func DecodeSpec(root *Node, file string) (*Spec, error) {
	d := &decoder{file: file}
	s := Default()
	err := d.eachField(root, "spec", func(key string, v *Node) (bool, error) {
		var err error
		switch key {
		case "name":
			s.Name, err = d.str(v, "name")
		case "mode":
			s.Mode, err = d.str(v, "mode")
		case "seed":
			s.Seed, err = d.intVal(v, "seed")
		case "days":
			s.Days, err = d.floatVal(v, "days")
		case "faults":
			err = d.faultsSection(v, s)
		case "failure":
			err = d.failureSection(v, s)
		case "traffic":
			err = d.trafficSection(v, s)
		case "fleet":
			err = d.fleetSection(v, s)
		case "fidelity":
			err = d.fidelitySection(v, s)
		case "durability":
			err = d.durabilitySection(v, s)
		case "output":
			err = d.outputSection(v, s)
		case "grid":
			// handled by File.axes; skipped here
		default:
			return false, nil
		}
		return true, err
	})
	if err != nil {
		return nil, err
	}
	if root.child("mode") == nil {
		return nil, d.errf(root, "spec is missing the required field \"mode\"")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return s, nil
}

func (d *decoder) sectionMap(v *Node, name string) (*Node, error) {
	if v.Kind != KindMap {
		return nil, d.errf(v, "section %s: expected nested keys, got a %s", name, v.Kind)
	}
	return v, nil
}

func (d *decoder) faultsSection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "faults")
	if err != nil {
		return err
	}
	return d.eachField(m, "faults", func(key string, v *Node) (bool, error) {
		var err error
		switch key {
		case "host_crashes":
			s.Faults.HostCrashes, err = d.boolVal(v, "faults.host_crashes")
		case "disks":
			s.Faults.Disks, err = d.boolVal(v, "faults.disks")
		case "hubs":
			s.Faults.Hubs, err = d.boolVal(v, "faults.hubs")
		case "net":
			s.Faults.Net, err = d.boolVal(v, "faults.net")
		case "corruptions":
			s.Faults.Corruptions, err = d.boolVal(v, "faults.corruptions")
		case "gray":
			s.Faults.Gray, err = d.boolVal(v, "faults.gray")
		case "mitigation":
			s.Faults.Mitigation, err = d.boolVal(v, "faults.mitigation")
		case "pairs":
			var n int64
			n, err = d.intVal(v, "faults.pairs")
			s.Faults.Pairs = int(n)
		case "blocks_per_space":
			var n int64
			n, err = d.intVal(v, "faults.blocks_per_space")
			s.Faults.BlocksPerSpace = int(n)
		default:
			return false, nil
		}
		return true, err
	})
}

func (d *decoder) failureSection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "failure")
	if err != nil {
		return err
	}
	return d.eachField(m, "failure", func(key string, v *Node) (bool, error) {
		var err error
		switch key {
		case "model":
			s.Failure.Model, err = d.str(v, "failure.model")
		case "age_years":
			s.Failure.AgeYears, err = d.floatVal(v, "failure.age_years")
		case "infant_afr":
			s.Failure.InfantAFR, err = d.floatVal(v, "failure.infant_afr")
		case "infant_decay_days":
			s.Failure.InfantDecayDays, err = d.floatVal(v, "failure.infant_decay_days")
		case "useful_afr":
			s.Failure.UsefulAFR, err = d.floatVal(v, "failure.useful_afr")
		case "wear_out_years":
			s.Failure.WearOutYears, err = d.floatVal(v, "failure.wear_out_years")
		case "wear_out_rise":
			s.Failure.WearOutRise, err = d.floatVal(v, "failure.wear_out_rise")
		case "batch_size":
			var n int64
			n, err = d.intVal(v, "failure.batch_size")
			s.Failure.BatchSize = int(n)
		case "batch_shock":
			s.Failure.BatchShock, err = d.floatVal(v, "failure.batch_shock")
		case "batch_window_days":
			s.Failure.BatchWindowDays, err = d.floatVal(v, "failure.batch_window_days")
		case "ure_bits":
			// Accept the two named measurement points or a number.
			if str, serr := d.str(v, "failure.ure_bits"); serr == nil {
				switch str {
				case "spec":
					s.Failure.UREBits = faults.SpecUREBits
					return true, nil
				case "observed":
					s.Failure.UREBits = faults.ObservedUREBits
					return true, nil
				case "off":
					s.Failure.UREBits = 0
					return true, nil
				}
			}
			s.Failure.UREBits, err = d.floatVal(v, "failure.ure_bits")
			if err != nil {
				err = d.errf(v, "field failure.ure_bits: want a number of bits-per-error, \"spec\", \"observed\", or \"off\"")
			}
		default:
			return false, nil
		}
		return true, err
	})
}

func (d *decoder) trafficSection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "traffic")
	if err != nil {
		return err
	}
	return d.eachField(m, "traffic", func(key string, v *Node) (bool, error) {
		var err error
		switch key {
		case "storm":
			s.Traffic.Storm, err = d.boolVal(v, "traffic.storm")
		case "protect":
			s.Traffic.Protect, err = d.boolVal(v, "traffic.protect")
		case "stream_quantiles":
			s.Traffic.StreamQuantiles, err = d.boolVal(v, "traffic.stream_quantiles")
		default:
			return false, nil
		}
		return true, err
	})
}

func (d *decoder) fleetSection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "fleet")
	if err != nil {
		return err
	}
	return d.eachField(m, "fleet", func(key string, v *Node) (bool, error) {
		var n int64
		var err error
		switch key {
		case "units":
			n, err = d.intVal(v, "fleet.units")
			s.Fleet.Units = int(n)
		case "shards":
			n, err = d.intVal(v, "fleet.shards")
			s.Fleet.Shards = int(n)
		case "clients":
			n, err = d.intVal(v, "fleet.clients")
			s.Fleet.Clients = int(n)
		case "volumes":
			n, err = d.intVal(v, "fleet.volumes")
			s.Fleet.Volumes = int(n)
		case "unit_loss":
			s.Fleet.UnitLoss, err = d.boolVal(v, "fleet.unit_loss")
		case "engine_workers":
			n, err = d.intVal(v, "fleet.engine_workers")
			s.Fleet.EngineWorkers = int(n)
		case "crashes":
			n, err = d.intVal(v, "fleet.crashes")
			s.Fleet.Crashes = int(n)
		case "partitions":
			n, err = d.intVal(v, "fleet.partitions")
			s.Fleet.Partitions = int(n)
		case "slot_moves":
			n, err = d.intVal(v, "fleet.slot_moves")
			s.Fleet.SlotMoves = int(n)
		case "fault_window_sec":
			s.Fleet.FaultWindowSec, err = d.floatVal(v, "fleet.fault_window_sec")
		case "skip_redrive":
			s.Fleet.SkipRedrive, err = d.boolVal(v, "fleet.skip_redrive")
		default:
			return false, nil
		}
		return true, err
	})
}

func (d *decoder) fidelitySection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "fidelity")
	if err != nil {
		return err
	}
	return d.eachField(m, "fidelity", func(key string, v *Node) (bool, error) {
		var err error
		switch key {
		case "check":
			s.Fidelity.Check, err = d.str(v, "fidelity.check")
		default:
			return false, nil
		}
		return true, err
	})
}

func (d *decoder) durabilitySection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "durability")
	if err != nil {
		return err
	}
	return d.eachField(m, "durability", func(key string, v *Node) (bool, error) {
		var n int64
		var err error
		switch key {
		case "scheme":
			s.Durability.Scheme, err = d.str(v, "durability.scheme")
		case "disks":
			n, err = d.intVal(v, "durability.disks")
			s.Durability.Disks = int(n)
		case "disk_tb":
			s.Durability.DiskTB, err = d.floatVal(v, "durability.disk_tb")
		case "years":
			s.Durability.Years, err = d.floatVal(v, "durability.years")
		case "repair_hours":
			s.Durability.RepairHours, err = d.floatVal(v, "durability.repair_hours")
		case "trials":
			n, err = d.intVal(v, "durability.trials")
			s.Durability.Trials = int(n)
		default:
			return false, nil
		}
		return true, err
	})
}

func (d *decoder) outputSection(v *Node, s *Spec) error {
	m, err := d.sectionMap(v, "output")
	if err != nil {
		return err
	}
	return d.eachField(m, "output", func(key string, v *Node) (bool, error) {
		var err error
		switch key {
		case "log":
			s.Output.Log, err = d.boolVal(v, "output.log")
		default:
			return false, nil
		}
		return true, err
	})
}

// Parse parses and decodes a spec document (YAML subset or JSON — sniffed
// from the first non-space byte), returning the File handle grid
// expansion and hashing hang off.
func Parse(data []byte, file string) (*File, error) {
	var root *Node
	var err error
	if isJSON(data) {
		root, err = ParseJSON(data, file)
	} else {
		root, err = ParseYAML(data, file)
	}
	if err != nil {
		return nil, err
	}
	f := &File{Path: file, root: root}
	if f.Spec, err = DecodeSpec(root, file); err != nil {
		return nil, err
	}
	if err := f.decodeAxes(); err != nil {
		return nil, err
	}
	return f, nil
}

func isJSON(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// decodeAxes extracts the grid section (axis path -> list of scalar
// values, in document order).
func (f *File) decodeAxes() error {
	d := &decoder{file: f.Path}
	g := f.root.child("grid")
	if g == nil {
		return nil
	}
	if g.Kind != KindMap {
		return d.errf(g, "section grid: expected axis paths mapped to value lists, got a %s", g.Kind)
	}
	for i, path := range g.Keys {
		v := g.Children[i]
		if v.Kind != KindList {
			return d.errf(v, "grid axis %q: expected a list of values, got a %s", path, v.Kind)
		}
		if len(v.Children) == 0 {
			return d.errf(v, "grid axis %q: empty value list", path)
		}
		ax := Axis{Path: path, Name: path[strings.LastIndex(path, ".")+1:]}
		for _, item := range v.Children {
			if item.Kind != KindScalar {
				return d.errf(item, "grid axis %q: values must be scalars, got a %s", path, item.Kind)
			}
			ax.Values = append(ax.Values, item)
		}
		f.Axes = append(f.Axes, ax)
	}
	return nil
}
