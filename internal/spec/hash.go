package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// hashVersion salts the content hash. Bump it whenever the meaning of a
// spec field changes without its value changing (a simulator behaviour
// change that invalidates cached cell results).
const hashVersion = "ustore-spec-v1"

// Canonical renders the decoded, defaulted spec in its canonical byte
// form: JSON with struct-declaration field order. Because the hash is
// computed here — after parsing, defaulting, and validation — two
// documents that decode to the same values share a hash no matter how
// they were formatted, which keys were spelled out versus defaulted, or
// what order the keys appeared in. Changing any value always changes it.
func Canonical(s *Spec) []byte {
	// Spec contains only plain data fields; Marshal cannot fail.
	b, err := json.Marshal(s)
	if err != nil {
		panic("spec: canonical marshal: " + err.Error())
	}
	return b
}

// Hash is the content hash of one cell: sha256 over the version salt and
// the canonical form, hex encoded. Cache entries are keyed by it.
func Hash(s *Spec) string {
	h := sha256.New()
	h.Write([]byte(hashVersion))
	h.Write([]byte{0})
	h.Write(Canonical(s))
	return hex.EncodeToString(h.Sum(nil))
}
