package spec

import "testing"

// TestHashStableAcrossFormatting is the cache-invalidation contract: the
// hash is computed over the decoded, defaulted spec, so reformatting,
// reordering keys, comments, explicit-defaults, and YAML-vs-JSON all map
// to the same hash — while changing any value changes it.
func TestHashStableAcrossFormatting(t *testing.T) {
	base := "mode: durability\nseed: 5\ndurability:\n  scheme: r3\n  disks: 256\n"
	same := []string{
		// Key order swapped at both levels.
		"durability:\n  disks: 256\n  scheme: r3\nseed: 5\nmode: durability\n",
		// Comments and blank lines.
		"# cmt\nmode: durability\n\nseed: 5\ndurability:\n  scheme: r3 # inline\n  disks: 256\n",
		// Defaults spelled out explicitly.
		"mode: durability\nseed: 5\ndays: 2\ndurability:\n  scheme: r3\n  disks: 256\n  disk_tb: 4\n",
		// Same values via JSON.
		`{"mode": "durability", "seed": 5, "durability": {"scheme": "r3", "disks": 256}}`,
		// Quoted scalar strings where quoting is value-neutral.
		"mode: \"durability\"\nseed: 5\ndurability:\n  scheme: \"r3\"\n  disks: 256\n",
	}
	want := mustHash(t, base)
	for i, doc := range same {
		if got := mustHash(t, doc); got != want {
			t.Errorf("variant %d hashes %s, want %s (formatting must not invalidate)", i, got[:12], want[:12])
		}
	}
	diff := []string{
		"mode: durability\nseed: 6\ndurability:\n  scheme: r3\n  disks: 256\n",          // seed
		"mode: durability\nseed: 5\ndurability:\n  scheme: ec8+3\n  disks: 256\n",       // scheme
		"mode: durability\nseed: 5\ndurability:\n  scheme: r3\n  disks: 257\n",          // disks
		"mode: durability\nseed: 5\nname: x\ndurability:\n  scheme: r3\n  disks: 256\n", // name
		"mode: faults\nseed: 5\ndurability:\n  scheme: r3\n  disks: 256\n",              // mode
	}
	for i, doc := range diff {
		if got := mustHash(t, doc); got == want {
			t.Errorf("variant %d shares the hash despite a value change:\n%s", i, doc)
		}
	}
}

func mustHash(t *testing.T, doc string) string {
	t.Helper()
	name := "h.yaml"
	if doc[0] == '{' {
		name = "h.json"
	}
	f, err := Parse([]byte(doc), name)
	if err != nil {
		t.Fatalf("parse %q: %v", doc, err)
	}
	cells, err := f.Cells()
	if err != nil || len(cells) != 1 {
		t.Fatalf("cells: %v (%d)", err, len(cells))
	}
	return cells[0].Hash
}

// TestHashIgnoresFilePathAndGrid: the file's name and how the grid was
// written don't reach the cell identity — a cell is its decoded values.
func TestHashIgnoresFilePathAndGrid(t *testing.T) {
	gridded := "mode: durability\ndurability:\n  disks: 128\ngrid:\n  durability.scheme: [r2, r3]\n"
	f, err := Parse([]byte(gridded), "a.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := f.Cells()
	if err != nil || len(cells) != 2 {
		t.Fatalf("cells: %v", err)
	}
	// The r3 cell must hash identically to a gridless document pinning r3,
	// parsed under a different file name.
	flat := "mode: durability\ndurability:\n  disks: 128\n  scheme: r3\n"
	if got := mustHash(t, flat); got != cells[1].Hash {
		t.Errorf("grid cell hash %s != equivalent flat spec hash %s", cells[1].Hash[:12], got[:12])
	}
	if cells[0].Hash == cells[1].Hash {
		t.Error("different scheme values share a hash")
	}
}

// TestHashEditOneAxisInvalidatesExactlyAffectedCells: editing one axis
// value must change only that axis's cells; the untouched cells keep
// their hashes (so a cached campaign re-runs exactly the edited column).
func TestHashEditOneAxisInvalidatesExactlyAffectedCells(t *testing.T) {
	v1 := "mode: durability\ngrid:\n  durability.scheme: [r2, r3]\n  failure.model: [constant, empirical]\n"
	v2 := "mode: durability\ngrid:\n  durability.scheme: [r2, ec8+3]\n  failure.model: [constant, empirical]\n"
	c1 := mustCells(t, v1)
	c2 := mustCells(t, v2)
	if len(c1) != 4 || len(c2) != 4 {
		t.Fatalf("want 4 cells each, got %d/%d", len(c1), len(c2))
	}
	// Cells 0,1 (scheme=r2) are untouched; cells 2,3 changed r3 -> ec8+3.
	for i := 0; i < 2; i++ {
		if c1[i].Hash != c2[i].Hash {
			t.Errorf("untouched cell %d (%s) was invalidated", i, c1[i].ID)
		}
	}
	for i := 2; i < 4; i++ {
		if c1[i].Hash == c2[i].Hash {
			t.Errorf("edited cell %d (%s) kept its hash", i, c2[i].ID)
		}
	}
}

func mustCells(t *testing.T, doc string) []Cell {
	t.Helper()
	f, err := Parse([]byte(doc), "g.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := f.Cells()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestCanonicalDeterministic: byte-identical canonical form on repeat
// decodes (this is what makes the on-disk cache key stable across runs
// and processes).
func TestCanonicalDeterministic(t *testing.T) {
	doc := "mode: fidelity\nfidelity:\n  check: table1-ustore-capex\n"
	a, err := Parse([]byte(doc), "x.yaml")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(doc), "x.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if string(Canonical(a.Spec)) != string(Canonical(b.Spec)) {
		t.Error("canonical form differs across decodes")
	}
	if Hash(a.Spec) != Hash(b.Spec) {
		t.Error("hash differs across decodes")
	}
}
