package spec

import (
	"strings"
	"testing"

	"ustore/internal/faults"
)

const sampleYAML = `# durability-vs-cost sweep
name: durability-grid
mode: durability
seed: 7
failure:
  model: empirical
  ure_bits: observed
durability:
  scheme: r3
  disks: 512
  trials: 2
grid:
  durability.scheme: [r2, r3, ec8+3]
  failure.model: [constant, empirical]
`

func TestParseYAMLSpec(t *testing.T) {
	f, err := Parse([]byte(sampleYAML), "sample.yaml")
	if err != nil {
		t.Fatal(err)
	}
	s := f.Spec
	if s.Name != "durability-grid" || s.Mode != "durability" || s.Seed != 7 {
		t.Fatalf("base fields wrong: %+v", s)
	}
	if s.Failure.Model != "empirical" || s.Failure.UREBits != faults.ObservedUREBits {
		t.Fatalf("failure section wrong: %+v", s.Failure)
	}
	if s.Durability.Disks != 512 || s.Durability.Trials != 2 {
		t.Fatalf("durability section wrong: %+v", s.Durability)
	}
	// Defaults fill what the document leaves out.
	if s.Durability.DiskTB != 4 || s.Days != 2 || !s.Faults.Disks {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if len(f.Axes) != 2 || f.Axes[0].Path != "durability.scheme" || f.Axes[1].Name != "model" {
		t.Fatalf("axes wrong: %+v", f.Axes)
	}
}

func TestGridExpansion(t *testing.T) {
	f, err := Parse([]byte(sampleYAML), "sample.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := f.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("want 3x2=6 cells, got %d", len(cells))
	}
	// Document axis order, last axis fastest.
	wantIDs := []string{
		"scheme=r2,model=constant", "scheme=r2,model=empirical",
		"scheme=r3,model=constant", "scheme=r3,model=empirical",
		"scheme=ec8+3,model=constant", "scheme=ec8+3,model=empirical",
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.ID != wantIDs[i] {
			t.Errorf("cell %d: ID %q, want %q", i, c.ID, wantIDs[i])
		}
		if seen[c.Hash] {
			t.Errorf("cell %d: duplicate hash %s", i, c.Hash)
		}
		seen[c.Hash] = true
		if c.Index != i {
			t.Errorf("cell %d: Index %d", i, c.Index)
		}
	}
	if cells[4].Spec.Durability.Scheme != "ec8+3" || cells[4].Spec.Failure.Model != "constant" {
		t.Fatalf("override not applied: %+v", cells[4].Spec)
	}
	// Non-gridded fields stay at the document's values in every cell.
	for _, c := range cells {
		if c.Spec.Durability.Disks != 512 || c.Spec.Seed != 7 {
			t.Fatalf("cell %s lost base values: %+v", c.ID, c.Spec)
		}
	}
}

func TestParseJSONSpec(t *testing.T) {
	doc := `{
  "mode": "fleet",
  "seed": 3,
  "fleet": {"units": 4, "shards": 2, "unit_loss": true},
  "grid": {"fleet.engine_workers": [1, 4]}
}`
	f, err := Parse([]byte(doc), "sample.json")
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Mode != "fleet" || f.Spec.Fleet.Units != 4 || !f.Spec.Fleet.UnitLoss {
		t.Fatalf("JSON decode wrong: %+v", f.Spec)
	}
	cells, err := f.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[1].Spec.Fleet.EngineWorkers != 4 {
		t.Fatalf("JSON grid wrong: %+v", cells)
	}
}

// TestPositionalErrors holds the whole reject path to "always position":
// each bad document must fail with file:line:col pointing at the problem.
func TestPositionalErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantPos, wantMsg string
	}{
		{"unknown top field", "mode: faults\nbogus: 1\n", "spec.yaml:2:1", "unknown field \"bogus\""},
		{"unknown nested field", "mode: faults\nfaults:\n  pears: 4\n", "spec.yaml:3:3", "unknown field \"pears\" in faults"},
		{"type mismatch int", "mode: faults\nseed: lots\n", "spec.yaml:2:7", "cannot parse \"lots\" as an integer"},
		{"type mismatch bool", "mode: faults\nfaults:\n  disks: 3\n", "spec.yaml:3:10", "expected true or false"},
		{"quoted bool rejected", "mode: faults\nfaults:\n  disks: \"true\"\n", "spec.yaml:3:10", "got the string"},
		{"scalar for section", "mode: faults\nfaults: on\n", "spec.yaml:2:9", "expected nested keys"},
		{"tab indent", "mode: faults\nfaults:\n\tdisks: true\n", "spec.yaml:3:1", "tab in indentation"},
		{"duplicate key", "mode: faults\nmode: traffic\n", "spec.yaml:2:1", "duplicate key"},
		{"missing mode", "seed: 4\n", "spec.yaml", "missing the required field \"mode\""},
		{"bad mode value", "mode: sideways\n", "spec.yaml", "unknown mode"},
		{"grid not a list", "mode: faults\ngrid:\n  seed: 4\n", "spec.yaml:3:9", "expected a list of values"},
		{"grid nested list", "mode: faults\ngrid:\n  seed: [[1]]\n", "spec.yaml:3:9", "nested flow lists"},
		{"bad ure_bits", "mode: faults\nfailure:\n  ure_bits: sometimes\n", "spec.yaml:3:13", "\"spec\", \"observed\", or \"off\""},
		{"unsupported anchor", "mode: faults\nname: &a x\n", "spec.yaml:2:7", "unsupported YAML syntax"},
		{"json trailing", `{"mode": "faults"} {`, "sample", "trailing data"},
		{"json unknown field", "{\n \"mode\": \"faults\",\n \"bogus\": 1\n}", "sample.json:3", "unknown field \"bogus\""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			name := "spec.yaml"
			if strings.HasPrefix(c.doc, "{") {
				name = "sample.json"
			}
			_, err := Parse([]byte(c.doc), name)
			if err == nil {
				t.Fatalf("doc accepted:\n%s", c.doc)
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Errorf("error %q does not mention %q", err, c.wantMsg)
			}
			if !strings.Contains(err.Error(), strings.Replace(c.wantPos, "sample", name, 1)) &&
				!strings.Contains(err.Error(), c.wantPos) {
				t.Errorf("error %q lacks position %q", err, c.wantPos)
			}
		})
	}
}

func TestSchemeParsing(t *testing.T) {
	cases := []struct {
		scheme   string
		width    int
		tolerate int
		overhead float64
		ok       bool
	}{
		{"r3", 3, 2, 3, true},
		{"r1", 1, 0, 1, true},
		{"ec8+3", 11, 3, 11.0 / 8, true},
		{"ec4+2", 6, 2, 1.5, true},
		{"r0", 0, 0, 0, false},
		{"r17", 0, 0, 0, false},
		{"ec8", 0, 0, 0, false},
		{"ec0+3", 0, 0, 0, false},
		{"raid6", 0, 0, 0, false},
		{"", 0, 0, 0, false},
	}
	for _, c := range cases {
		w, tol, err := ParseScheme(c.scheme)
		if c.ok != (err == nil) {
			t.Errorf("%q: ok=%v, err=%v", c.scheme, c.ok, err)
			continue
		}
		if !c.ok {
			continue
		}
		if w != c.width || tol != c.tolerate {
			t.Errorf("%q: got (%d,%d), want (%d,%d)", c.scheme, w, tol, c.width, c.tolerate)
		}
		if ov, _ := SchemeOverhead(c.scheme); ov != c.overhead {
			t.Errorf("%q: overhead %.3f, want %.3f", c.scheme, ov, c.overhead)
		}
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	for _, doc := range []string{
		"mode: faults\ndays: 0\n",
		"mode: faults\nfaults:\n  pairs: 0\n",
		"mode: durability\ndurability:\n  scheme: raid6\n",
		"mode: durability\ndurability:\n  trials: 0\n",
		"mode: fleet\nfleet:\n  units: 0\n",
		"mode: fleet\nfleet:\n  units: 8\n  shards: 2\n  crashes: -1\n",
		"mode: fleet\nfleet:\n  units: 8\n  shards: 1\n  slot_moves: 2\n",
		"mode: faults\nfailure:\n  model: empirical\n  age_years: 0\n",
		"mode: faults\nfailure:\n  model: psychic\n",
	} {
		if _, err := Parse([]byte(doc), "bad.yaml"); err == nil {
			t.Errorf("accepted invalid spec:\n%s", doc)
		}
	}
}

func TestCommentsAndQuoting(t *testing.T) {
	doc := "mode: faults # trailing comment\nname: \"a # not-a-comment\"\nseed: 9\n"
	f, err := Parse([]byte(doc), "c.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if f.Spec.Name != "a # not-a-comment" || f.Spec.Seed != 9 {
		t.Fatalf("comment stripping broke values: %+v", f.Spec)
	}
}
