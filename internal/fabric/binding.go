package fabric

import (
	"fmt"
	"sort"
	"time"

	"ustore/internal/usb"
)

// Binding projects the fabric's electrical state into per-host USB device
// trees (package usb), so that switch turns, component failures, and power
// cuts produce the hot-plug and enumeration behaviour a real host observes:
// immediate detach events, then serialized re-enumeration on the receiving
// host after the detect delay.
type Binding struct {
	fabric *Fabric
	hcs    map[string]*usb.HostController
	// devices maps fabric hub/disk nodes to their usb device objects.
	devices map[NodeID]*usb.Device
	// edges tracks the currently-applied visible edge for each device.
	edges map[NodeID]VisibleChild

	// OnStorageEnumerated fires when a disk becomes usable on a host.
	OnStorageEnumerated func(host string, diskID NodeID)
	// OnStorageDetached fires when a disk disappears from a host.
	OnStorageDetached func(host string, diskID NodeID)
}

// NewBinding creates host controllers for every fabric host and attaches
// the initial visible trees. Run the scheduler to complete the initial
// enumeration. It uses the full USB addressing limit per controller; use
// NewBindingWithLimit to reproduce the Intel driver quirk (§V-B).
func NewBinding(f *Fabric, clock func() time.Duration, schedule func(time.Duration, func())) *Binding {
	return NewBindingWithLimit(f, usb.MaxDevicesPerTree, clock, schedule)
}

// NewBindingWithLimit is NewBinding with an explicit per-host device limit
// (hubs included). With usb.IntelRootHubDeviceLimit the binding reproduces
// the prototype's observed behaviour: devices beyond the limit silently
// fail to enumerate until the tree shrinks.
func NewBindingWithLimit(f *Fabric, limit int, clock func() time.Duration, schedule func(time.Duration, func())) *Binding {
	b := &Binding{
		fabric:  f,
		hcs:     make(map[string]*usb.HostController),
		devices: make(map[NodeID]*usb.Device),
		edges:   make(map[NodeID]VisibleChild),
	}
	for _, h := range f.Hosts() {
		host := h
		hc := usb.NewHostController(host, 1, limit, clock, schedule)
		hc.OnEnumerated = func(dev *usb.Device) {
			if dev.Class == usb.ClassStorage && b.OnStorageEnumerated != nil {
				b.OnStorageEnumerated(host, NodeID(dev.ID))
			}
		}
		hc.OnDetached = func(dev *usb.Device) {
			if dev.Class == usb.ClassStorage && b.OnStorageDetached != nil {
				b.OnStorageDetached(host, NodeID(dev.ID))
			}
		}
		b.hcs[host] = hc
	}
	for _, id := range f.Hubs() {
		b.devices[id] = usb.NewHub(string(id), f.Node(id).FanIn)
	}
	for _, id := range f.Disks() {
		b.devices[id] = usb.NewStorage(string(id))
	}
	f.OnSwitchTurn(func(sw NodeID, oldSel, newSel int) { b.Resync() })
	b.Resync()
	return b
}

// HostController returns host's USB controller (what its EndPoint monitors).
func (b *Binding) HostController(host string) *usb.HostController { return b.hcs[host] }

// Device returns the usb device object for a fabric node.
func (b *Binding) Device(id NodeID) *usb.Device { return b.devices[id] }

// HostOf returns the host whose tree currently contains the device, or "".
func (b *Binding) HostOf(id NodeID) string {
	e, ok := b.edges[id]
	if !ok {
		return ""
	}
	for {
		pn := b.fabric.Node(e.Parent)
		if pn.Kind == KindRootPort {
			return pn.Host
		}
		pe, ok := b.edges[e.Parent]
		if !ok {
			return ""
		}
		e = pe
	}
}

// Resync diffs the fabric's visible trees against the applied USB state and
// performs the minimal detaches and attaches. Call it after any fabric
// mutation that is not a switch turn (failures, power cuts, repairs);
// switch turns trigger it automatically.
func (b *Binding) Resync() {
	desired := make(map[NodeID]VisibleChild)
	for _, h := range b.fabric.Hosts() {
		for _, e := range b.fabric.VisibleTree(h) {
			desired[e.Child] = e
		}
	}

	// Detach devices whose edge changed or disappeared. Children of a
	// moved subtree keep their relative edges, so detaching the subtree
	// root is enough — detach top-down and skip descendants of already-
	// detached nodes (their usb objects travel with the parent).
	var toDetach []NodeID
	for id, cur := range b.edges {
		want, ok := desired[id]
		if !ok || want != cur {
			toDetach = append(toDetach, id)
		}
	}
	sort.Slice(toDetach, func(i, j int) bool { return toDetach[i] < toDetach[j] })
	detached := make(map[NodeID]bool)
	for _, id := range toDetach {
		if b.ancestorDetaching(id, desired) {
			// The subtree root handles it; just update bookkeeping.
			if want, ok := desired[id]; ok {
				b.edges[id] = want
			} else {
				delete(b.edges, id)
			}
			continue
		}
		host := b.HostOf(id)
		if host != "" {
			if hc := b.hcs[host]; hc != nil {
				_ = hc.Detach(b.devices[id])
			}
		}
		detached[id] = true
		delete(b.edges, id)
	}

	// Attach new/updated edges, parents before children.
	var toAttach []NodeID
	for id, want := range desired {
		if cur, ok := b.edges[id]; !ok || cur != want {
			toAttach = append(toAttach, id)
		}
	}
	sort.Slice(toAttach, func(i, j int) bool {
		di, dj := b.visibleDepth(desired, toAttach[i]), b.visibleDepth(desired, toAttach[j])
		if di != dj {
			return di < dj
		}
		return toAttach[i] < toAttach[j] // deterministic tiebreak (toAttach comes from a map)
	})
	for _, id := range toAttach {
		want := desired[id]
		// If this node's usb device is still physically inside a parent
		// device that was itself re-attached (subtree move), it needs no
		// separate attach — just record the edge.
		if b.insideAttachedParent(id, want) {
			b.edges[id] = want
			continue
		}
		host := b.hostOfDesired(desired, id)
		hc := b.hcs[host]
		if hc == nil {
			continue
		}
		parentDev := b.parentDevice(want, hc)
		if parentDev == nil {
			continue
		}
		if err := hc.Attach(parentDev, want.Slot+1, b.devices[id]); err != nil {
			// Device-limit or port conflicts surface to the operator via
			// the USB monitor (the disk simply never enumerates).
			continue
		}
		b.edges[id] = want
	}
}

// ancestorDetaching reports whether some visible ancestor of id is also
// having its edge changed (so the subtree moves as a unit).
func (b *Binding) ancestorDetaching(id NodeID, desired map[NodeID]VisibleChild) bool {
	cur, ok := b.edges[id]
	if !ok {
		return false
	}
	parent := cur.Parent
	for {
		pe, ok := b.edges[parent]
		if !ok {
			return false // parent is a root port (or unattached)
		}
		want, ok := desired[parent]
		if !ok || want != pe {
			return true
		}
		parent = pe.Parent
	}
}

// insideAttachedParent reports whether id's usb device already sits at the
// right port inside its (possibly just-moved) parent device.
func (b *Binding) insideAttachedParent(id NodeID, want VisibleChild) bool {
	pn := b.fabric.Node(want.Parent)
	if pn.Kind == KindRootPort {
		return false
	}
	parentDev := b.devices[want.Parent]
	if parentDev == nil {
		return false
	}
	return parentDev.Children[want.Slot+1] == b.devices[id]
}

func (b *Binding) visibleDepth(desired map[NodeID]VisibleChild, id NodeID) int {
	d := 0
	for {
		e, ok := desired[id]
		if !ok {
			return d
		}
		id = e.Parent
		d++
		if d > len(desired)+1 {
			return d
		}
	}
}

func (b *Binding) hostOfDesired(desired map[NodeID]VisibleChild, id NodeID) string {
	for {
		e, ok := desired[id]
		if !ok {
			return ""
		}
		pn := b.fabric.Node(e.Parent)
		if pn.Kind == KindRootPort {
			return pn.Host
		}
		id = e.Parent
	}
}

func (b *Binding) parentDevice(want VisibleChild, hc *usb.HostController) *usb.Device {
	if b.fabric.Node(want.Parent).Kind == KindRootPort {
		return hc.Root()
	}
	return b.devices[want.Parent]
}

// DataPath returns the fabric resources a data flow from disk consumes:
// the hub uplinks on its current path and the owning host. Used to build
// the usb.FlowSim resource path for throughput experiments.
func (b *Binding) DataPath(disk NodeID) (hubs []NodeID, host string, err error) {
	path, err := b.fabric.PathToRoot(disk)
	if err != nil {
		return nil, "", err
	}
	for _, id := range path {
		n := b.fabric.Node(id)
		switch n.Kind {
		case KindHub:
			hubs = append(hubs, id)
		case KindRootPort:
			host = n.Host
		}
	}
	return hubs, host, nil
}

// String summarizes current attachment for debugging.
func (b *Binding) String() string {
	out := ""
	for _, h := range b.fabric.Hosts() {
		out += fmt.Sprintf("%s: %v\n", h, b.hcs[h].EnumeratedStorage())
	}
	return out
}
