package fabric

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func protoWithControl(t *testing.T) (*simtime.Scheduler, *Fabric, *ControlPlane) {
	t.Helper()
	s := simtime.NewScheduler(1)
	f := proto(t)
	a := NewMicrocontroller("mcuA", "h1")
	b := NewMicrocontroller("mcuB", "h2")
	cp := NewControlPlane(f, a, b, func(d time.Duration, fn func()) { s.After(d, fn) })
	return s, f, cp
}

func moveGroupPairs(f *Fabric, group int, target string) []DiskHost {
	pairs := make([]DiskHost, 4)
	for i := range pairs {
		pairs[i] = DiskHost{Disk: DiskID(group*4 + i), Host: target}
	}
	return pairs
}

func otherHost(f *Fabric, not string) string {
	for _, h := range f.Hosts() {
		if h != not {
			return h
		}
	}
	return ""
}

func TestTurnSwitchesThroughPrimary(t *testing.T) {
	s, f, cp := protoWithControl(t)
	h0, _ := f.AttachedHost(DiskID(0))
	target := otherHost(f, h0)
	turns, err := f.SwitchesToTurn(moveGroupPairs(f, 0, target))
	if err != nil {
		t.Fatal(err)
	}
	var done error = errors.New("pending")
	start := s.Now()
	cp.TurnSwitches(0, turns, func(err error) { done = err })
	s.Run()
	if done != nil {
		t.Fatalf("turn failed: %v", done)
	}
	if got, _ := f.AttachedHost(DiskID(0)); got != target {
		t.Fatalf("disk on %s, want %s", got, target)
	}
	// Each turn costs command + actuation, serially.
	wantMin := time.Duration(len(turns)) * (MCUCommandDelay + SwitchTurnDelay)
	if s.Now()-start < wantMin {
		t.Fatalf("turns completed in %v, want >= %v", s.Now()-start, wantMin)
	}
}

func TestUnpoweredMCUUnreachable(t *testing.T) {
	s, f, cp := protoWithControl(t)
	h0, _ := f.AttachedHost(DiskID(0))
	turns, _ := f.ForcedTurns(moveGroupPairs(f, 0, otherHost(f, h0)))
	var done error
	cp.TurnSwitches(1, turns, func(err error) { done = err }) // MCU B is off
	s.Run()
	if !errors.Is(done, ErrMCUUnreachable) {
		t.Fatalf("err = %v, want ErrMCUUnreachable", done)
	}
}

func TestFailoverKeepsSwitchState(t *testing.T) {
	s, f, cp := protoWithControl(t)
	// Move group 0 via primary to make some switch lines nonzero.
	h0, _ := f.AttachedHost(DiskID(0))
	target := otherHost(f, h0)
	turns, _ := f.ForcedTurns(moveGroupPairs(f, 0, target))
	cp.TurnSwitches(0, turns, func(error) {})
	s.Run()
	before := make(map[NodeID]int)
	for _, sw := range f.Switches() {
		before[sw] = f.Node(sw).Sel
	}
	// Planned failover to the standby: XOR sync must leave all lines as-is.
	cp.Failover(1)
	for sw, sel := range before {
		if f.Node(sw).Sel != sel {
			t.Fatalf("switch %s glitched on failover: %d -> %d", sw, sel, f.Node(sw).Sel)
		}
	}
	if cp.MCU(0).Powered() || !cp.MCU(1).Powered() {
		t.Fatal("power state wrong after failover")
	}
	// The standby can now drive further turns.
	h, _ := f.AttachedHost(DiskID(0))
	turns2, _ := f.ForcedTurns(moveGroupPairs(f, 0, otherHost(f, h)))
	var done error = errors.New("pending")
	cp.TurnSwitches(1, turns2, func(err error) { done = err })
	s.Run()
	if done != nil {
		t.Fatalf("standby turn failed: %v", done)
	}
}

func TestCrashedPrimaryHostStandbyTakesOver(t *testing.T) {
	s, f, cp := protoWithControl(t)
	hostUp := map[string]bool{"h1": true, "h2": true, "h3": true, "h4": true}
	cp.SetHostUp(func(h string) bool { return hostUp[h] })
	// Set some lines via primary.
	h0, _ := f.AttachedHost(DiskID(0))
	target := otherHost(f, h0)
	turns, _ := f.ForcedTurns(moveGroupPairs(f, 0, target))
	cp.TurnSwitches(0, turns, func(error) {})
	s.Run()

	// Primary's host crashes: primary unreachable (its outputs persist —
	// the board still has power).
	hostUp["h1"] = false
	if cp.Reachable(0) {
		t.Fatal("primary still reachable after host crash")
	}
	var done error
	cp.TurnSwitches(0, nil, func(err error) { done = err })
	s.Run()
	if !errors.Is(done, ErrMCUUnreachable) {
		t.Fatalf("err = %v", done)
	}

	// Power on the standby (no glitch) and drive through it.
	before := make(map[NodeID]int)
	for _, sw := range f.Switches() {
		before[sw] = f.Node(sw).Sel
	}
	cp.PowerOnMCU(1)
	for sw, sel := range before {
		if f.Node(sw).Sel != sel {
			t.Fatalf("switch %s glitched on standby power-on", sw)
		}
	}
	h, _ := f.AttachedHost(DiskID(4))
	turns2, _ := f.ForcedTurns(moveGroupPairs(f, 1, otherHost(f, h)))
	done = errors.New("pending")
	cp.TurnSwitches(1, turns2, func(err error) { done = err })
	s.Run()
	if done != nil {
		t.Fatalf("standby failed: %v", done)
	}
	if got, _ := f.AttachedHost(DiskID(4)); got == h {
		t.Fatal("standby turn had no effect")
	}
}

func TestFailedMCUBoard(t *testing.T) {
	s, _, cp := protoWithControl(t)
	cp.MCU(0).Fail()
	var done error
	cp.TurnSwitches(0, nil, func(err error) { done = err })
	s.Run()
	if !errors.Is(done, ErrMCUUnreachable) {
		t.Fatalf("err = %v", done)
	}
}

func TestPowerRelay(t *testing.T) {
	s, f, cp := protoWithControl(t)
	var done error = errors.New("pending")
	cp.SetPower(0, DiskID(3), false, func(err error) { done = err })
	s.Run()
	if done != nil {
		t.Fatal(done)
	}
	if f.Node(DiskID(3)).Powered {
		t.Fatal("disk still powered after relay open")
	}
	done = errors.New("pending")
	cp.SetPower(0, DiskID(3), true, func(err error) { done = err })
	s.Run()
	if done != nil || !f.Node(DiskID(3)).Powered {
		t.Fatalf("power restore failed: %v", done)
	}
	// Relays exist only for disks and hubs.
	done = nil
	cp.SetPower(0, NodeID("root:h1"), false, func(err error) { done = err })
	s.Run()
	if done == nil {
		t.Fatal("root port relay accepted")
	}
}
