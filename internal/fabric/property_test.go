package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property (§III-A): "any switch configuration is a valid partition of the
// fabric into multiple non-overlapping trees, which connect each leaf node
// to one of the root ports". Under any random switch assignment, every
// disk either reaches exactly one root port, or is electrically
// disconnected (its cascade points elsewhere) — and no two disks' paths
// ever disagree about a shared switch (trivially true because paths follow
// the same selections, but the partition property also requires that every
// connected disk's path is loop-free and lands on a root).
func TestPropertyAnySwitchConfigIsValidPartition(t *testing.T) {
	f := proto(t)
	switches := f.Switches()
	check := func(bits []bool) bool {
		for i, sw := range switches {
			sel := 0
			if i < len(bits) && bits[i] {
				sel = 1
			}
			if err := f.SetSwitch(sw, sel); err != nil {
				return false
			}
		}
		hostSeen := make(map[NodeID]string)
		for _, d := range f.Disks() {
			path, err := f.PathToRoot(d)
			if err != nil {
				return false // healthy fabric: every path must terminate
			}
			last := f.Node(path[len(path)-1])
			if last.Kind != KindRootPort {
				return false
			}
			// Loop-free: no node repeats.
			seen := make(map[NodeID]bool, len(path))
			for _, id := range path {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
			// Non-overlapping trees: every fabric node on the path must
			// belong to exactly one host's tree in this configuration.
			for _, id := range path {
				if f.Node(id).Kind == KindHub || f.Node(id).Kind == KindRootPort {
					if prev, ok := hostSeen[id]; ok && prev != last.Host {
						return false
					}
					hostSeen[id] = last.Host
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: in the switch-high fabric, disks behind the same leaf hub are
// always attached to the same host, for any switch configuration.
func TestPropertyGroupsNeverSplit(t *testing.T) {
	f := proto(t)
	switches := f.Switches()
	groups := f.CoMovingGroups()
	check := func(bits []bool) bool {
		for i, sw := range switches {
			sel := 0
			if i < len(bits) && bits[i] {
				sel = 1
			}
			_ = f.SetSwitch(sw, sel)
		}
		for _, g := range groups {
			var host string
			for i, d := range g {
				h, err := f.AttachedHost(d)
				if err != nil {
					return false
				}
				if i == 0 {
					host = h
				} else if h != host {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: RouteTo then applying the returned settings always attaches
// the disk to the requested host, from any starting configuration, in both
// topology designs.
func TestPropertyRouteToAlwaysLands(t *testing.T) {
	for _, build := range []func(Config) (*Fabric, error){BuildSwitchHigh, BuildFullTrees} {
		f, err := build(Config{Hosts: []string{"h1", "h2", "h3", "h4"}, Disks: 16, FanIn: 4})
		if err != nil {
			t.Fatal(err)
		}
		switches := f.Switches()
		hosts := f.Hosts()
		disks := f.Disks()
		check := func(bits []bool, diskSel, hostSel uint8) bool {
			for i, sw := range switches {
				sel := 0
				if i < len(bits) && bits[i] {
					sel = 1
				}
				_ = f.SetSwitch(sw, sel)
			}
			d := disks[int(diskSel)%len(disks)]
			h := hosts[int(hostSel)%len(hosts)]
			settings, err := f.RouteTo(d, h)
			if err != nil {
				return false
			}
			for _, st := range settings {
				if err := f.SetSwitch(st.Switch, st.Sel); err != nil {
					return false
				}
			}
			got, err := f.AttachedHost(d)
			return err == nil && got == h
		}
		cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}
		if err := quick.Check(check, cfg); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: SwitchesToTurn never proposes turning a switch that another
// (unlisted) disk's current path occupies with a different setting — and
// applying an accepted plan never changes any unlisted disk's attachment.
func TestPropertyAlgorithm1NeverDisturbs(t *testing.T) {
	f, err := BuildFullTrees(Config{Hosts: []string{"h1", "h2"}, Disks: 8, FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	hosts := f.Hosts()
	disks := f.Disks()
	check := func(diskSel, hostSel uint8, scramble []bool) bool {
		switches := f.Switches()
		for i, sw := range switches {
			sel := 0
			if i < len(scramble) && scramble[i] {
				sel = 1
			}
			_ = f.SetSwitch(sw, sel)
		}
		before := make(map[NodeID]string)
		for _, d := range disks {
			h, err := f.AttachedHost(d)
			if err != nil {
				return true // disconnected start; Algorithm 1 cares about attached disks
			}
			before[d] = h
		}
		d := disks[int(diskSel)%len(disks)]
		h := hosts[int(hostSel)%len(hosts)]
		turns, err := f.SwitchesToTurn([]DiskHost{{Disk: d, Host: h}})
		if err != nil {
			return true // conflicts are legitimate refusals
		}
		for _, st := range turns {
			_ = f.SetSwitch(st.Switch, st.Sel)
		}
		for _, other := range disks {
			if other == d {
				continue
			}
			got, err := f.AttachedHost(other)
			if err != nil || got != before[other] {
				return false
			}
		}
		got, err := f.AttachedHost(d)
		return err == nil && got == h
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
