package fabric

import (
	"fmt"
)

// Config parameterizes a deploy-unit fabric build.
type Config struct {
	// Hosts are the unit's host names (the paper uses 4 per unit).
	Hosts []string
	// Disks is the number of disks in the unit (16 in the prototype,
	// 64 in the cost model's production unit).
	Disks int
	// FanIn is the hub fan-in factor k (4-port hubs in the prototype).
	FanIn int
	// Prefix namespaces every node ID, so multiple deploy units can share
	// one Master's flat disk namespace (e.g. "u1.").
	Prefix string
}

func (c Config) validate() error {
	if len(c.Hosts) < 2 {
		return fmt.Errorf("fabric: need at least 2 hosts, got %d", len(c.Hosts))
	}
	if c.Disks <= 0 {
		return fmt.Errorf("fabric: need at least 1 disk, got %d", c.Disks)
	}
	if c.FanIn < 2 {
		return fmt.Errorf("fabric: fan-in must be >= 2, got %d", c.FanIn)
	}
	return nil
}

// DiskID returns the canonical disk node ID for index i (unprefixed unit).
func DiskID(i int) NodeID { return PrefixedDiskID("", i) }

// PrefixedDiskID returns the disk node ID for index i in a prefixed unit.
func PrefixedDiskID(prefix string, i int) NodeID {
	return NodeID(fmt.Sprintf("%sdisk%02d", prefix, i))
}

// BuildSwitchHigh constructs the Figure 2 (right) topology: disks sit under
// leaf hubs; each leaf hub's uplink enters a cascade of 2:1 switches that
// can steer the whole hub to any host's aggregation hub. Placing switches
// high in the tree needs far fewer components than full per-disk trees
// (the paper's cost argument in §III-A).
//
// Component count: ceil(D/k) leaf hubs, (H-1) switches per leaf hub, and one
// aggregation hub per host (more if leaf hubs exceed fan-in).
func BuildSwitchHigh(cfg Config) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := New()
	leafHubs := (cfg.Disks + cfg.FanIn - 1) / cfg.FanIn

	// Host-side aggregation: one slot per leaf hub per host.
	hostSlots := make(map[string][]Attachment)
	for _, h := range cfg.Hosts {
		if _, err := f.AddRootPort(h); err != nil {
			return nil, err
		}
		slots, err := buildAggregation(f, h, leafHubs, cfg.FanIn)
		if err != nil {
			return nil, err
		}
		hostSlots[h] = slots
	}

	// Leaf hubs with their switch cascades.
	for l := 0; l < leafHubs; l++ {
		ups := make([]Attachment, len(cfg.Hosts))
		for hi, h := range cfg.Hosts {
			ups[hi] = hostSlots[h][l]
		}
		top, err := buildCascade(f, fmt.Sprintf("%slh%02d", cfg.Prefix, l), ups)
		if err != nil {
			return nil, err
		}
		hubID := NodeID(fmt.Sprintf("%sleafhub%02d", cfg.Prefix, l))
		if err := f.AddHub(hubID, cfg.FanIn, top); err != nil {
			return nil, err
		}
		for s := 0; s < cfg.FanIn; s++ {
			di := l*cfg.FanIn + s
			if di >= cfg.Disks {
				break
			}
			if err := f.AddDisk(PrefixedDiskID(cfg.Prefix, di), Attachment{Parent: hubID, Slot: s}); err != nil {
				return nil, err
			}
		}
	}
	balance(f, cfg)
	return f, nil
}

// BuildFullTrees constructs the Figure 2 (left) topology: one full hub tree
// per host spanning every disk position, with a per-disk switch cascade
// selecting which tree the disk joins. Maximum flexibility (each disk moves
// independently) at maximum component cost — the ablation baseline.
func BuildFullTrees(cfg Config) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := New()
	treeSlots := make(map[string][]Attachment)
	for _, h := range cfg.Hosts {
		if _, err := f.AddRootPort(h); err != nil {
			return nil, err
		}
		slots, err := buildAggregation(f, h, cfg.Disks, cfg.FanIn)
		if err != nil {
			return nil, err
		}
		treeSlots[h] = slots
	}
	for d := 0; d < cfg.Disks; d++ {
		ups := make([]Attachment, len(cfg.Hosts))
		for hi, h := range cfg.Hosts {
			ups[hi] = treeSlots[h][d]
		}
		top, err := buildCascade(f, fmt.Sprintf("%sdk%02d", cfg.Prefix, d), ups)
		if err != nil {
			return nil, err
		}
		// The disk plugs straight into its cascade.
		if err := f.AddDisk(PrefixedDiskID(cfg.Prefix, d), top); err != nil {
			return nil, err
		}
	}
	balance(f, cfg)
	return f, nil
}

// buildAggregation builds host h's aggregation tree providing `want`
// downstream slots, returning them in order. With want <= fanIn a single
// hub under the root port suffices; otherwise hubs cascade (up to the USB
// tier limit, which the caller's config must respect).
func buildAggregation(f *Fabric, host string, want, fanIn int) ([]Attachment, error) {
	rootHub := NodeID(fmt.Sprintf("agg:%s:0", host))
	if err := f.AddHub(rootHub, fanIn, Attachment{Parent: NodeID("root:" + host), Slot: 0}); err != nil {
		return nil, err
	}
	level := []NodeID{rootHub}
	capacity := fanIn
	gen := 1
	for capacity < want {
		var next []NodeID
		for _, parent := range level {
			for s := 0; s < fanIn; s++ {
				id := NodeID(fmt.Sprintf("agg:%s:%d.%s.%d", host, gen, parent, s))
				if err := f.AddHub(id, fanIn, Attachment{Parent: parent, Slot: s}); err != nil {
					return nil, err
				}
				next = append(next, id)
			}
		}
		level = next
		capacity = len(level) * fanIn
		gen++
	}
	slots := make([]Attachment, 0, want)
	for _, hub := range level {
		for s := 0; s < fanIn && len(slots) < want; s++ {
			slots = append(slots, Attachment{Parent: hub, Slot: s})
		}
	}
	return slots, nil
}

// buildCascade builds a binary tree of 2:1 switches whose single downstream
// slot (returned) can be routed to any of ups. len(ups)-1 switches are
// created. With len(ups)==1 no switch is needed and ups[0] is returned.
func buildCascade(f *Fabric, prefix string, ups []Attachment) (Attachment, error) {
	if len(ups) == 1 {
		return ups[0], nil
	}
	n := 0
	var build func(ups []Attachment) (Attachment, error)
	build = func(ups []Attachment) (Attachment, error) {
		if len(ups) == 1 {
			return ups[0], nil
		}
		mid := len(ups) / 2
		left, err := build(ups[:mid])
		if err != nil {
			return Attachment{}, err
		}
		right, err := build(ups[mid:])
		if err != nil {
			return Attachment{}, err
		}
		id := NodeID(fmt.Sprintf("sw:%s:%d", prefix, n))
		n++
		if err := f.AddSwitch(id, left, right); err != nil {
			return Attachment{}, err
		}
		return Attachment{Parent: id, Slot: 0}, nil
	}
	return build(ups)
}

// balance sets initial switch positions so disks spread evenly over hosts:
// disk i (or its leaf-hub group) routes to host i mod H.
func balance(f *Fabric, cfg Config) {
	for i := 0; i < cfg.Disks; i++ {
		// In switch-high fabrics whole leaf-hub groups move together, so
		// balance by group; per-disk cascades balance by disk.
		group := i
		if _, isGroup := f.nodes[NodeID(fmt.Sprintf("%sleafhub%02d", cfg.Prefix, i/cfg.FanIn))]; isGroup {
			group = i / cfg.FanIn
		}
		target := cfg.Hosts[group%len(cfg.Hosts)]
		settings, err := f.RouteTo(PrefixedDiskID(cfg.Prefix, i), target)
		if err != nil {
			continue
		}
		for _, st := range settings {
			_ = f.SetSwitch(st.Switch, st.Sel)
		}
	}
}

// Prototype returns the paper's proof-of-concept configuration: 16 disks,
// 4 hosts, 4-port hubs, switch-high topology (§V-B).
func Prototype() (*Fabric, error) {
	return BuildSwitchHigh(Config{
		Hosts: []string{"h1", "h2", "h3", "h4"},
		Disks: 16,
		FanIn: 4,
	})
}

// ProductionUnit returns the cost model's 64-disk deploy unit (§VI).
func ProductionUnit() (*Fabric, error) {
	return BuildSwitchHigh(Config{
		Hosts: []string{"h1", "h2", "h3", "h4"},
		Disks: 64,
		FanIn: 4,
	})
}
