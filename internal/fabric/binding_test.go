package fabric

import (
	"testing"
	"time"

	"ustore/internal/simtime"
	"ustore/internal/usb"
)

func protoBinding(t *testing.T) (*simtime.Scheduler, *Fabric, *Binding) {
	t.Helper()
	s := simtime.NewScheduler(1)
	f := proto(t)
	b := NewBinding(f,
		func() time.Duration { return s.Now() },
		func(d time.Duration, fn func()) { s.After(d, fn) })
	s.Run() // complete initial enumeration
	return s, f, b
}

func TestInitialEnumeration(t *testing.T) {
	_, f, b := protoBinding(t)
	for _, h := range f.Hosts() {
		got := b.HostController(h).EnumeratedStorage()
		if len(got) != 4 {
			t.Fatalf("host %s sees %v, want 4 disks", h, got)
		}
	}
}

func TestSwitchTurnMovesUSBSubtree(t *testing.T) {
	s, f, b := protoBinding(t)
	var enumerated, detached []string
	b.OnStorageEnumerated = func(host string, d NodeID) { enumerated = append(enumerated, host+"/"+string(d)) }
	b.OnStorageDetached = func(host string, d NodeID) { detached = append(detached, host+"/"+string(d)) }

	src, _ := f.AttachedHost(DiskID(0))
	dst := otherHost(f, src)
	turns, err := f.ForcedTurns(moveGroupPairs(f, 0, dst))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range turns {
		if err := f.SetSwitch(st.Switch, st.Sel); err != nil {
			t.Fatal(err)
		}
	}
	// Detach events are immediate.
	if len(detached) != 4 {
		t.Fatalf("detached = %v, want the 4 group disks", detached)
	}
	// Enumeration on the destination completes after detect + serial delay.
	s.Run()
	if len(enumerated) != 4 {
		t.Fatalf("enumerated = %v", enumerated)
	}
	for _, e := range enumerated {
		if e[:2] != dst {
			t.Fatalf("enumerated on wrong host: %v", enumerated)
		}
	}
	if n := len(b.HostController(dst).EnumeratedStorage()); n != 8 {
		t.Fatalf("dst sees %d disks, want 8", n)
	}
	if n := len(b.HostController(src).EnumeratedStorage()); n != 0 {
		t.Fatalf("src still sees %d disks", n)
	}
}

func TestEnumerationDelayGrowsWithDisksSwitched(t *testing.T) {
	// The Figure 6 part-1 mechanism: switching more disks at once takes
	// longer to fully recognize because enumeration is serialized.
	measure := func(groups int) time.Duration {
		s := simtime.NewScheduler(1)
		f, err := Prototype()
		if err != nil {
			t.Fatal(err)
		}
		b := NewBinding(f,
			func() time.Duration { return s.Now() },
			func(d time.Duration, fn func()) { s.After(d, fn) })
		s.Run()
		// All groups switch to the same destination host (the paper's
		// experiment moves n disks to one receiving host at once).
		dst := f.Hosts()[3]
		var pairs []DiskHost
		for g := 0; g < groups; g++ {
			if src, _ := f.AttachedHost(DiskID(g * 4)); src == dst {
				continue
			}
			pairs = append(pairs, moveGroupPairs(f, g, dst)...)
		}
		want := len(pairs)
		got := 0
		var last simtime.Time
		b.OnStorageEnumerated = func(host string, d NodeID) {
			got++
			last = s.Now()
		}
		start := s.Now()
		turns, err := f.ForcedTurns(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range turns {
			_ = f.SetSwitch(st.Switch, st.Sel)
		}
		s.Run()
		if got != want {
			t.Fatalf("enumerated %d of %d", got, want)
		}
		return last - start
	}
	d1 := measure(1)
	d2 := measure(2)
	d3 := measure(3)
	if !(d1 < d2 && d2 < d3) {
		t.Fatalf("recognition delay not growing: %v %v %v", d1, d2, d3)
	}
}

func TestFailedHubDetachesSubtree(t *testing.T) {
	_, f, b := protoBinding(t)
	h, _ := f.AttachedHost(DiskID(0))
	path, _ := f.PathToRoot(DiskID(0))
	var leafHub NodeID
	for _, id := range path {
		if f.Node(id).Kind == KindHub {
			leafHub = id
			break
		}
	}
	var detached []string
	b.OnStorageDetached = func(host string, d NodeID) { detached = append(detached, string(d)) }
	if err := f.Fail(leafHub); err != nil {
		t.Fatal(err)
	}
	b.Resync()
	if len(detached) != 4 {
		t.Fatalf("detached = %v, want 4 disks under failed hub", detached)
	}
	if n := len(b.HostController(h).EnumeratedStorage()); n != 0 {
		t.Fatalf("host still sees %d disks", n)
	}
}

func TestPowerCutDetachesDisk(t *testing.T) {
	s, f, b := protoBinding(t)
	h, _ := f.AttachedHost(DiskID(0))
	if err := f.SetPower(DiskID(0), false); err != nil {
		t.Fatal(err)
	}
	b.Resync()
	s.Run()
	for _, id := range b.HostController(h).EnumeratedStorage() {
		if id == string(DiskID(0)) {
			t.Fatal("unpowered disk still enumerated")
		}
	}
	// Restore: disk re-enumerates on the same host.
	if err := f.SetPower(DiskID(0), true); err != nil {
		t.Fatal(err)
	}
	b.Resync()
	s.Run()
	found := false
	for _, id := range b.HostController(h).EnumeratedStorage() {
		if id == string(DiskID(0)) {
			found = true
		}
	}
	if !found {
		t.Fatal("re-powered disk did not re-enumerate")
	}
}

func TestHostOf(t *testing.T) {
	_, f, b := protoBinding(t)
	for _, d := range f.Disks() {
		want, err := f.AttachedHost(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.HostOf(d); got != want {
			t.Fatalf("HostOf(%s) = %q, want %q", d, got, want)
		}
	}
}

func TestDataPath(t *testing.T) {
	_, f, b := protoBinding(t)
	hubs, host, err := b.DataPath(DiskID(0))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.AttachedHost(DiskID(0))
	if host != want {
		t.Fatalf("host = %s, want %s", host, want)
	}
	if len(hubs) != 2 {
		t.Fatalf("hubs = %v, want leaf + aggregation", hubs)
	}
}

func TestBindingTreeMatchesUSBTree(t *testing.T) {
	_, f, b := protoBinding(t)
	for _, h := range f.Hosts() {
		tr := b.HostController(h).Tree()
		var hubs, storage int
		for _, e := range tr {
			switch e.Class {
			case usb.ClassHub:
				hubs++
			case usb.ClassStorage:
				storage++
			}
		}
		if hubs != 2 || storage != 4 {
			t.Fatalf("host %s usb tree: %d hubs %d disks", h, hubs, storage)
		}
	}
}
