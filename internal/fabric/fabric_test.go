package fabric

import (
	"errors"
	"testing"
)

func proto(t *testing.T) *Fabric {
	t.Helper()
	f, err := Prototype()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPrototypeShape(t *testing.T) {
	f := proto(t)
	b := f.BOM()
	// 16 disks, 4 hosts, k=4 switch-high: 4 leaf hubs + 4 aggregation hubs,
	// 3 switches per leaf hub.
	if b.Disks != 16 || b.Bridges != 16 || b.Hosts != 4 {
		t.Fatalf("BOM = %+v", b)
	}
	if b.Hubs != 8 {
		t.Fatalf("hubs = %d, want 8 (4 leaf + 4 aggregation)", b.Hubs)
	}
	if b.Switches != 12 {
		t.Fatalf("switches = %d, want 12 (3 per leaf hub)", b.Switches)
	}
}

func TestFullTreesCostMoreComponents(t *testing.T) {
	cfg := Config{Hosts: []string{"h1", "h2", "h3", "h4"}, Disks: 16, FanIn: 4}
	sh, err := BuildSwitchHigh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := BuildFullTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, bf := sh.BOM(), ft.BOM()
	if bf.Hubs <= bs.Hubs {
		t.Fatalf("full trees hubs %d <= switch-high hubs %d", bf.Hubs, bs.Hubs)
	}
	if bf.Switches <= bs.Switches {
		t.Fatalf("full trees switches %d <= switch-high %d", bf.Switches, bs.Switches)
	}
	// Per-disk cascades: 16 disks x 3 switches.
	if bf.Switches != 48 {
		t.Fatalf("full-tree switches = %d, want 48", bf.Switches)
	}
}

func TestInitialBalance(t *testing.T) {
	f := proto(t)
	counts := make(map[string]int)
	for _, d := range f.Disks() {
		h, err := f.AttachedHost(d)
		if err != nil {
			t.Fatalf("disk %s: %v", d, err)
		}
		counts[h]++
	}
	for _, h := range f.Hosts() {
		if counts[h] != 4 {
			t.Fatalf("host %s has %d disks, want 4 (balance): %v", h, counts[h], counts)
		}
	}
}

func TestEveryDiskReachesEveryHost(t *testing.T) {
	f := proto(t)
	for _, d := range f.Disks() {
		hosts := f.ReachableHosts(d)
		if len(hosts) != 4 {
			t.Fatalf("disk %s reaches %v, want all 4 hosts", d, hosts)
		}
	}
}

func TestRouteToAndSetSwitchMovesDisk(t *testing.T) {
	f := proto(t)
	d := DiskID(0)
	cur, _ := f.AttachedHost(d)
	var target string
	for _, h := range f.Hosts() {
		if h != cur {
			target = h
			break
		}
	}
	settings, err := f.RouteTo(d, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range settings {
		if err := f.SetSwitch(st.Switch, st.Sel); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.AttachedHost(d)
	if err != nil || got != target {
		t.Fatalf("attached to %s (err %v), want %s", got, err, target)
	}
}

func TestSwitchHighGroupMovesTogether(t *testing.T) {
	// In the switch-high fabric, disks 0-3 share leafhub00: moving disk 0
	// moves its whole group.
	f := proto(t)
	h0, _ := f.AttachedHost(DiskID(0))
	h1, _ := f.AttachedHost(DiskID(1))
	if h0 != h1 {
		t.Fatalf("group mates on different hosts: %s vs %s", h0, h1)
	}
	var target string
	for _, h := range f.Hosts() {
		if h != h0 {
			target = h
			break
		}
	}
	turns, err := f.ForcedTurns([]DiskHost{{Disk: DiskID(0), Host: target}})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range turns {
		_ = f.SetSwitch(st.Switch, st.Sel)
	}
	for i := 0; i < 4; i++ {
		h, _ := f.AttachedHost(DiskID(i))
		if h != target {
			t.Fatalf("group mate disk%02d on %s, want %s", i, h, target)
		}
	}
}

func TestAlgorithm1Conflict(t *testing.T) {
	// Moving disk 0 alone conflicts: its leaf-hub cascade is pinned by
	// disks 1-3 (the paper's "force disk E to be disconnected" case).
	f := proto(t)
	var target string
	h0, _ := f.AttachedHost(DiskID(0))
	for _, h := range f.Hosts() {
		if h != h0 {
			target = h
			break
		}
	}
	_, err := f.SwitchesToTurn([]DiskHost{{Disk: DiskID(0), Host: target}})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err type %T", err)
	}
	if len(ce.Disturbed) == 0 {
		t.Fatal("conflict error names no disturbed disks")
	}
}

func TestAlgorithm1GroupMoveNoConflict(t *testing.T) {
	// Naming the whole leaf-hub group in the command clears the conflict.
	f := proto(t)
	h0, _ := f.AttachedHost(DiskID(0))
	var target string
	for _, h := range f.Hosts() {
		if h != h0 {
			target = h
			break
		}
	}
	pairs := make([]DiskHost, 4)
	for i := range pairs {
		pairs[i] = DiskHost{Disk: DiskID(i), Host: target}
	}
	turns, err := f.SwitchesToTurn(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) == 0 {
		t.Fatal("no turns computed")
	}
	for _, st := range turns {
		_ = f.SetSwitch(st.Switch, st.Sel)
	}
	for i := 0; i < 4; i++ {
		h, _ := f.AttachedHost(DiskID(i))
		if h != target {
			t.Fatalf("disk%02d on %s, want %s", i, h, target)
		}
	}
}

func TestAlgorithm1NoopWhenAlreadyThere(t *testing.T) {
	f := proto(t)
	h0, _ := f.AttachedHost(DiskID(0))
	turns, err := f.SwitchesToTurn([]DiskHost{{Disk: DiskID(0), Host: h0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(turns) != 0 {
		t.Fatalf("turns = %v, want none (already attached)", turns)
	}
}

func TestAlgorithm1ContradictoryCommand(t *testing.T) {
	f := proto(t)
	hosts := f.Hosts()
	_, err := f.SwitchesToTurn([]DiskHost{
		{Disk: DiskID(0), Host: hosts[0]},
		{Disk: DiskID(0), Host: hosts[1]},
	})
	if err == nil {
		t.Fatal("contradictory command accepted")
	}
	// Two disks of the same group to different hosts must also conflict.
	_, err = f.SwitchesToTurn([]DiskHost{
		{Disk: DiskID(0), Host: hosts[1]},
		{Disk: DiskID(1), Host: hosts[2]},
		{Disk: DiskID(2), Host: hosts[1]},
		{Disk: DiskID(3), Host: hosts[1]},
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestFullTreesPerDiskIndependence(t *testing.T) {
	cfg := Config{Hosts: []string{"h1", "h2"}, Disks: 8, FanIn: 4}
	f, err := BuildFullTrees(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Any single disk can move without conflict in the full-trees design.
	h0, _ := f.AttachedHost(DiskID(0))
	target := "h2"
	if h0 == "h2" {
		target = "h1"
	}
	turns, err := f.SwitchesToTurn([]DiskHost{{Disk: DiskID(0), Host: target}})
	if err != nil {
		t.Fatalf("independent move conflicted: %v", err)
	}
	for _, st := range turns {
		_ = f.SetSwitch(st.Switch, st.Sel)
	}
	got, _ := f.AttachedHost(DiskID(0))
	if got != target {
		t.Fatalf("disk on %s, want %s", got, target)
	}
	// Others undisturbed.
	for i := 1; i < 8; i++ {
		if h, _ := f.AttachedHost(DiskID(i)); h == "" {
			t.Fatalf("disk%02d disconnected", i)
		}
	}
}

func TestDisturbedBy(t *testing.T) {
	f := proto(t)
	h0, _ := f.AttachedHost(DiskID(0))
	var target string
	for _, h := range f.Hosts() {
		if h != h0 {
			target = h
			break
		}
	}
	turns, err := f.ForcedTurns([]DiskHost{{Disk: DiskID(0), Host: target}})
	if err != nil {
		t.Fatal(err)
	}
	disturbed := f.DisturbedBy(turns, []DiskHost{{Disk: DiskID(0), Host: target}})
	if len(disturbed) != 3 {
		t.Fatalf("disturbed = %v, want disks 1-3", disturbed)
	}
	// What-if must not change live state.
	if h, _ := f.AttachedHost(DiskID(1)); h != h0 {
		t.Fatalf("DisturbedBy mutated fabric: disk01 on %s", h)
	}
}

func TestFailedHubBreaksPathsAndRouting(t *testing.T) {
	f := proto(t)
	// Fail disk 0's leaf hub: all four group disks lose their path.
	path, err := f.PathToRoot(DiskID(0))
	if err != nil {
		t.Fatal(err)
	}
	var leafHub NodeID
	for _, id := range path {
		if f.Node(id).Kind == KindHub {
			leafHub = id
			break
		}
	}
	if err := f.Fail(leafHub); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.AttachedHost(DiskID(i)); !errors.Is(err, ErrBrokenPath) {
			t.Fatalf("disk%02d err = %v, want ErrBrokenPath", i, err)
		}
		if hosts := f.ReachableHosts(DiskID(i)); len(hosts) != 0 {
			t.Fatalf("disk%02d still routes to %v through failed hub", i, hosts)
		}
	}
	// Other groups unaffected.
	if _, err := f.AttachedHost(DiskID(4)); err != nil {
		t.Fatalf("disk04: %v", err)
	}
	if err := f.Repair(leafHub); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AttachedHost(DiskID(0)); err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

func TestFailedAggregationHubRoutesAround(t *testing.T) {
	f := proto(t)
	h, _ := f.AttachedHost(DiskID(0))
	aggHub := NodeID("agg:" + h + ":0")
	if err := f.Fail(aggHub); err != nil {
		t.Fatal(err)
	}
	// Disk can no longer reach h, but reaches the other three hosts.
	hosts := f.ReachableHosts(DiskID(0))
	if len(hosts) != 3 {
		t.Fatalf("reachable = %v, want 3 hosts", hosts)
	}
	for _, rh := range hosts {
		if rh == h {
			t.Fatalf("failed aggregation hub still routable: %v", hosts)
		}
	}
}

func TestUnpoweredDiskExcluded(t *testing.T) {
	f := proto(t)
	if err := f.SetPower(DiskID(0), false); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AttachedHost(DiskID(0)); !errors.Is(err, ErrBrokenPath) {
		t.Fatalf("err = %v", err)
	}
	// Power relays only exist on disks and hubs.
	if err := f.SetPower(NodeID("root:h1"), false); err == nil {
		t.Fatal("root port accepted power relay")
	}
}

func TestVisibleTreeShape(t *testing.T) {
	f := proto(t)
	for _, h := range f.Hosts() {
		edges := f.VisibleTree(h)
		// Each host: agg hub under root, one leaf hub under agg, 4 disks.
		var hubs, disks int
		for _, e := range edges {
			switch f.Node(e.Child).Kind {
			case KindHub:
				hubs++
			case KindDisk:
				disks++
			default:
				t.Fatalf("switch leaked into visible tree: %+v", e)
			}
		}
		if hubs != 2 || disks != 4 {
			t.Fatalf("host %s visible tree: %d hubs %d disks, want 2/4", h, hubs, disks)
		}
	}
}

func TestVisibleTreePrunesFailures(t *testing.T) {
	f := proto(t)
	h, _ := f.AttachedHost(DiskID(0))
	if err := f.Fail(DiskID(0)); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.VisibleTree(h) {
		if e.Child == DiskID(0) {
			t.Fatal("failed disk visible")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Hosts: []string{"h1"}, Disks: 4, FanIn: 4},
		{Hosts: []string{"h1", "h2"}, Disks: 0, FanIn: 4},
		{Hosts: []string{"h1", "h2"}, Disks: 4, FanIn: 1},
	}
	for i, cfg := range bad {
		if _, err := BuildSwitchHigh(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
		if _, err := BuildFullTrees(cfg); err == nil {
			t.Fatalf("config %d accepted by full trees: %+v", i, cfg)
		}
	}
}

func TestProductionUnitBuilds(t *testing.T) {
	f, err := ProductionUnit()
	if err != nil {
		t.Fatal(err)
	}
	b := f.BOM()
	if b.Disks != 64 {
		t.Fatalf("disks = %d", b.Disks)
	}
	// 16 leaf hubs, so each host needs 2 aggregation levels (1 + 4 hubs).
	if b.Switches != 16*3 {
		t.Fatalf("switches = %d, want 48", b.Switches)
	}
	for _, d := range f.Disks() {
		if len(f.ReachableHosts(d)) != 4 {
			t.Fatalf("disk %s cannot reach all hosts", d)
		}
	}
}

func TestNonPowerOfTwoHosts(t *testing.T) {
	f, err := BuildSwitchHigh(Config{Hosts: []string{"h1", "h2", "h3"}, Disks: 6, FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Disks() {
		if got := len(f.ReachableHosts(d)); got != 3 {
			t.Fatalf("disk %s reaches %d hosts, want 3", d, got)
		}
	}
}
