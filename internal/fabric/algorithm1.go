package fabric

import (
	"fmt"
	"sort"
)

// DiskHost is one "connect disk to host" pair of a topology command.
type DiskHost struct {
	Disk NodeID
	Host string
}

// ConflictError carries Algorithm 1's detailed error report: which switch
// cannot be turned and which unrelated disks its turn would disturb (the
// paper's example: "connecting A to H1 will force disk E to be disconnected
// from host H3").
type ConflictError struct {
	Switch NodeID
	// Need is the selection the command requires; Have is the current
	// selection pinned by other disks.
	Need, Have int
	// Disturbed lists disks outside the command whose current attachment
	// pins the switch.
	Disturbed []NodeID
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("%v: switch %s needs %d but is pinned at %d by %v",
		ErrConflict, e.Switch, e.Need, e.Have, e.Disturbed)
}

// Unwrap lets errors.Is(err, ErrConflict) work.
func (e *ConflictError) Unwrap() error { return ErrConflict }

// SwitchesToTurn implements Algorithm 1: given the command's disk/host
// pairs, compute the minimal set of switch turns that realizes it, or a
// ConflictError if a required turn would disturb a disk not named in the
// command. Turns are returned in deterministic order (sorted by switch ID).
//
// Following the paper: first collect the switches occupied by the current
// paths of every disk NOT in the command; then for each commanded pair walk
// its required route, adding unoccupied switches whose state must change,
// and failing if an occupied switch is pinned at a different state.
func (f *Fabric) SwitchesToTurn(pairs []DiskHost) ([]SwitchSetting, error) {
	inCmd := make(map[NodeID]string, len(pairs))
	for _, p := range pairs {
		if prev, dup := inCmd[p.Disk]; dup && prev != p.Host {
			return nil, fmt.Errorf("fabric: command names %s twice (%s and %s)", p.Disk, prev, p.Host)
		}
		inCmd[p.Disk] = p.Host
	}

	// occupied: switch -> selection pinned by other disks' current paths,
	// with the pinning disks recorded for error reporting.
	type pin struct {
		sel   int
		disks []NodeID
	}
	occupied := make(map[NodeID]*pin)
	for _, d := range f.Disks() {
		if _, named := inCmd[d]; named {
			continue
		}
		path, err := f.PathToRoot(d)
		if err != nil {
			continue // a disconnected disk occupies nothing
		}
		for _, id := range path {
			n := f.nodes[id]
			if n.Kind != KindSwitch {
				continue
			}
			if p, ok := occupied[id]; ok {
				p.disks = append(p.disks, d)
			} else {
				occupied[id] = &pin{sel: n.Sel, disks: []NodeID{d}}
			}
		}
	}

	var turns []SwitchSetting
	planned := make(map[NodeID]int)
	for _, p := range pairs {
		settings, err := f.RouteTo(p.Disk, p.Host)
		if err != nil {
			return nil, fmt.Errorf("routing %s to %s: %w", p.Disk, p.Host, err)
		}
		for _, st := range settings {
			cur := f.nodes[st.Switch].Sel
			if pinned, ok := occupied[st.Switch]; ok {
				// Another disk's live path crosses this switch: it may
				// not move.
				if st.Sel != pinned.sel {
					disturbed := append([]NodeID(nil), pinned.disks...)
					sort.Slice(disturbed, func(i, j int) bool { return disturbed[i] < disturbed[j] })
					return nil, &ConflictError{Switch: st.Switch, Need: st.Sel, Have: pinned.sel, Disturbed: disturbed}
				}
				continue
			}
			if prev, ok := planned[st.Switch]; ok {
				if prev != st.Sel {
					return nil, &ConflictError{Switch: st.Switch, Need: st.Sel, Have: prev,
						Disturbed: nil} // two commanded pairs contradict
				}
				continue
			}
			planned[st.Switch] = st.Sel
			if cur != st.Sel {
				turns = append(turns, SwitchSetting{Switch: st.Switch, Sel: st.Sel})
			}
		}
	}
	sort.Slice(turns, func(i, j int) bool { return turns[i].Switch < turns[j].Switch })
	return turns, nil
}

// DisturbedBy returns the disks (outside pairs) whose current attachment
// would change if the given turns were applied anyway — what the Master
// weighs when deciding to "ignore the conflicts" (§IV-C). It simulates the
// turns, diffs attachments, and rolls back.
func (f *Fabric) DisturbedBy(turns []SwitchSetting, pairs []DiskHost) []NodeID {
	inCmd := make(map[NodeID]bool, len(pairs))
	for _, p := range pairs {
		inCmd[p.Disk] = true
	}
	before := make(map[NodeID]string)
	for _, d := range f.Disks() {
		if inCmd[d] {
			continue
		}
		if h, err := f.AttachedHost(d); err == nil {
			before[d] = h
		} else {
			before[d] = ""
		}
	}
	saved := make([]SwitchSetting, 0, len(turns))
	obs := f.onSwitchTurn
	f.onSwitchTurn = nil // silent what-if
	for _, t := range turns {
		saved = append(saved, SwitchSetting{Switch: t.Switch, Sel: f.nodes[t.Switch].Sel})
		_ = f.SetSwitch(t.Switch, t.Sel)
	}
	var disturbed []NodeID
	for d, h0 := range before {
		h1, err := f.AttachedHost(d)
		if err != nil {
			h1 = ""
		}
		if h1 != h0 {
			disturbed = append(disturbed, d)
		}
	}
	for i := len(saved) - 1; i >= 0; i-- {
		_ = f.SetSwitch(saved[i].Switch, saved[i].Sel)
	}
	f.onSwitchTurn = obs
	sort.Slice(disturbed, func(i, j int) bool { return disturbed[i] < disturbed[j] })
	return disturbed
}

// CoMovingGroups partitions the disks into groups that necessarily move
// together: disks whose routes to every host pass through the same switch
// set (a whole leaf hub in the switch-high design; singletons in the
// full-trees design). The Master plans failover targets per group so a
// forced command never contradicts itself.
func (f *Fabric) CoMovingGroups() [][]NodeID {
	byKey := make(map[string][]NodeID)
	var keys []string
	for _, d := range f.Disks() {
		key := ""
		for _, h := range f.hosts {
			settings, err := f.RouteTo(d, h)
			if err != nil {
				key += "!;"
				continue
			}
			for _, st := range settings {
				key += string(st.Switch) + ","
			}
			key += ";"
		}
		if _, seen := byKey[key]; !seen {
			keys = append(keys, key)
		}
		byKey[key] = append(byKey[key], d)
	}
	out := make([][]NodeID, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// ForcedTurns computes the turns for pairs ignoring occupancy conflicts —
// the Master chose to disturb other disks. Contradictions *within* the
// command still error.
func (f *Fabric) ForcedTurns(pairs []DiskHost) ([]SwitchSetting, error) {
	planned := make(map[NodeID]int)
	var turns []SwitchSetting
	for _, p := range pairs {
		settings, err := f.RouteTo(p.Disk, p.Host)
		if err != nil {
			return nil, fmt.Errorf("routing %s to %s: %w", p.Disk, p.Host, err)
		}
		for _, st := range settings {
			if prev, ok := planned[st.Switch]; ok {
				if prev != st.Sel {
					return nil, &ConflictError{Switch: st.Switch, Need: st.Sel, Have: prev}
				}
				continue
			}
			planned[st.Switch] = st.Sel
			if f.nodes[st.Switch].Sel != st.Sel {
				turns = append(turns, SwitchSetting{Switch: st.Switch, Sel: st.Sel})
			}
		}
	}
	sort.Slice(turns, func(i, j int) bool { return turns[i].Switch < turns[j].Switch })
	return turns, nil
}
