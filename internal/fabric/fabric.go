// Package fabric implements UStore's fat-tree interconnect fabric (§III of
// the paper): the topology of USB hubs and 2:1 switches that connects every
// disk of a deploy unit to one of several hosts, the control plane that
// reconfigures it (dual XOR-ed microcontrollers, power relays), and
// Algorithm 1 — the Controller's procedure for computing which switches to
// turn to execute a "connect disk A to host H" command without disturbing
// other disks.
//
// A fabric is a DAG. Disks and hubs have exactly one upstream attachment;
// a switch has one downstream slot and two alternative upstream attachments,
// of which its selection bit picks one. Any assignment of switch bits
// partitions the fabric into non-overlapping trees, each rooted at a host's
// root port (§III-A).
//
// USB switches and SATA-USB bridges are electrically transparent: they do
// not appear in the USB tree a host enumerates (§IV-E), so the "visible
// tree" a host sees contains only hubs and storage devices. The fabric
// package maintains that visible tree per host through the usb package,
// including enumeration delays when subtrees move between hosts.
package fabric

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a fabric node.
type NodeID string

// Kind enumerates fabric node kinds.
type Kind int

const (
	// KindRootPort is a host's USB 3.0 port (tree root).
	KindRootPort Kind = iota
	// KindHub is a USB hub with FanIn downstream slots.
	KindHub
	// KindSwitch is a 2:1 multiplexer: one downstream, two upstreams.
	KindSwitch
	// KindDisk is a leaf: SATA disk + USB bridge (one failure unit).
	KindDisk
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindRootPort:
		return "root"
	case KindHub:
		return "hub"
	case KindSwitch:
		return "switch"
	case KindDisk:
		return "disk"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attachment is a (parent node, downstream slot) pair.
type Attachment struct {
	Parent NodeID
	Slot   int
}

// Node is one element of the fabric graph.
type Node struct {
	ID   NodeID
	Kind Kind
	// Host is set for root ports: the owning host.
	Host string
	// FanIn is the downstream slot count (hubs; root ports have 1).
	FanIn int
	// Up is the single upstream attachment for disks and hubs.
	Up Attachment
	// Ups are the two alternative upstream attachments for switches.
	Ups [2]Attachment
	// Sel is the switch selection bit (which of Ups is connected).
	Sel int
	// Failed marks a dead component (hub burned out, bridge dead, ...).
	Failed bool
	// Powered is false when the control plane has cut this node's supply
	// (disks and hubs have controllable 12V relays, §III-B).
	Powered bool
}

// Fabric is the interconnect graph plus its control state.
type Fabric struct {
	nodes map[NodeID]*Node
	// down[parent][slot] lists what is plugged into each slot: either a
	// disk/hub (its Up points here) or a switch upstream side.
	down map[NodeID]map[int]NodeID
	// hosts in deterministic order.
	hosts []string

	// observers
	onSwitchTurn func(sw NodeID, oldSel, newSel int)
}

// New creates an empty fabric.
func New() *Fabric {
	return &Fabric{
		nodes: make(map[NodeID]*Node),
		down:  make(map[NodeID]map[int]NodeID),
	}
}

// OnSwitchTurn installs an observer for switch turns (used by the attach
// layer to move USB subtrees and by tests).
func (f *Fabric) OnSwitchTurn(fn func(sw NodeID, oldSel, newSel int)) { f.onSwitchTurn = fn }

// Node returns the node or nil.
func (f *Fabric) Node(id NodeID) *Node { return f.nodes[id] }

// Hosts returns the fabric's hosts in deterministic order.
func (f *Fabric) Hosts() []string {
	out := make([]string, len(f.hosts))
	copy(out, f.hosts)
	return out
}

// Disks returns all disk node IDs, sorted.
func (f *Fabric) Disks() []NodeID { return f.byKind(KindDisk) }

// Hubs returns all hub node IDs, sorted.
func (f *Fabric) Hubs() []NodeID { return f.byKind(KindHub) }

// Switches returns all switch node IDs, sorted.
func (f *Fabric) Switches() []NodeID { return f.byKind(KindSwitch) }

func (f *Fabric) byKind(k Kind) []NodeID {
	var out []NodeID
	for id, n := range f.nodes {
		if n.Kind == k {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Errors returned by fabric construction and routing.
var (
	// ErrDuplicateNode is returned when adding an existing node ID.
	ErrDuplicateNode = errors.New("fabric: duplicate node id")
	// ErrSlotTaken is returned when two nodes claim the same parent slot.
	ErrSlotTaken = errors.New("fabric: parent slot already wired")
	// ErrNoPath is returned when a disk cannot reach the requested host
	// under any switch assignment.
	ErrNoPath = errors.New("fabric: no path to host")
	// ErrBrokenPath is returned when the current path traverses a failed
	// or unpowered component.
	ErrBrokenPath = errors.New("fabric: path broken")
	// ErrConflict is Algorithm 1's error: executing the command would
	// disturb disks not named in it.
	ErrConflict = errors.New("fabric: switch conflict")
)

// AddRootPort adds host's root port node (ID "root:<host>").
func (f *Fabric) AddRootPort(host string) (NodeID, error) {
	id := NodeID("root:" + host)
	if _, dup := f.nodes[id]; dup {
		return "", fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	f.nodes[id] = &Node{ID: id, Kind: KindRootPort, Host: host, FanIn: 1, Powered: true}
	f.hosts = append(f.hosts, host)
	sort.Strings(f.hosts)
	return id, nil
}

// AddHub adds a hub with fanIn downstream slots, attached at up.
func (f *Fabric) AddHub(id NodeID, fanIn int, up Attachment) error {
	if fanIn <= 0 {
		return fmt.Errorf("fabric: hub %s fan-in %d", id, fanIn)
	}
	if err := f.addNode(&Node{ID: id, Kind: KindHub, FanIn: fanIn, Up: up, Powered: true}); err != nil {
		return err
	}
	return f.wire(up, id)
}

// AddDisk adds a disk leaf attached at up.
func (f *Fabric) AddDisk(id NodeID, up Attachment) error {
	if err := f.addNode(&Node{ID: id, Kind: KindDisk, Up: up, Powered: true}); err != nil {
		return err
	}
	return f.wire(up, id)
}

// AddSwitch adds a 2:1 switch whose upstream sides plug into upA and upB.
// Its downstream slot is (id, 0); initial selection is side 0 (upA).
func (f *Fabric) AddSwitch(id NodeID, upA, upB Attachment) error {
	if err := f.addNode(&Node{ID: id, Kind: KindSwitch, FanIn: 1, Ups: [2]Attachment{upA, upB}, Powered: true}); err != nil {
		return err
	}
	if err := f.wire(upA, id); err != nil {
		return err
	}
	return f.wire(upB, id)
}

func (f *Fabric) addNode(n *Node) error {
	if _, dup := f.nodes[n.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, n.ID)
	}
	f.nodes[n.ID] = n
	return nil
}

func (f *Fabric) wire(at Attachment, child NodeID) error {
	p, ok := f.nodes[at.Parent]
	if !ok {
		return fmt.Errorf("fabric: unknown parent %s for %s", at.Parent, child)
	}
	if at.Slot < 0 || at.Slot >= p.FanIn {
		return fmt.Errorf("fabric: %s slot %d out of range (fan-in %d)", at.Parent, at.Slot, p.FanIn)
	}
	slots := f.down[at.Parent]
	if slots == nil {
		slots = make(map[int]NodeID)
		f.down[at.Parent] = slots
	}
	if prev, busy := slots[at.Slot]; busy {
		return fmt.Errorf("%w: %s slot %d (held by %s)", ErrSlotTaken, at.Parent, at.Slot, prev)
	}
	slots[at.Slot] = child
	return nil
}

// downAt returns the node plugged into parent's slot, resolving a switch
// upstream side to the switch only if the switch currently selects this
// side. ok=false means the slot is electrically open.
func (f *Fabric) downAt(parent NodeID, slot int) (NodeID, bool) {
	child, ok := f.down[parent][slot]
	if !ok {
		return "", false
	}
	n := f.nodes[child]
	if n.Kind == KindSwitch {
		if n.Ups[n.Sel].Parent != parent || n.Ups[n.Sel].Slot != slot {
			return "", false // switch points at its other upstream
		}
	}
	return child, true
}

// upOf returns the currently-connected parent attachment of n (resolving
// switch selection) and whether n is a switch side that is disconnected.
func (f *Fabric) upOf(n *Node) Attachment {
	if n.Kind == KindSwitch {
		return n.Ups[n.Sel]
	}
	return n.Up
}

// PathToRoot walks from disk upward along the current configuration and
// returns the node IDs traversed (disk first, root port last). It returns
// ErrBrokenPath if a traversed component is failed or unpowered (the root
// port's host being down is the caller's concern, not the fabric's).
func (f *Fabric) PathToRoot(disk NodeID) ([]NodeID, error) {
	n, ok := f.nodes[disk]
	if !ok || n.Kind != KindDisk {
		return nil, fmt.Errorf("fabric: unknown disk %s", disk)
	}
	var path []NodeID
	cur := n
	for {
		path = append(path, cur.ID)
		if cur.Failed || !cur.Powered {
			return path, fmt.Errorf("%w: %s is %s", ErrBrokenPath, cur.ID, describeDown(cur))
		}
		if cur.Kind == KindRootPort {
			return path, nil
		}
		up := f.upOf(cur)
		parent, ok := f.nodes[up.Parent]
		if !ok {
			return path, fmt.Errorf("%w: dangling attachment above %s", ErrBrokenPath, cur.ID)
		}
		if len(path) > len(f.nodes) {
			return path, fmt.Errorf("fabric: cycle detected at %s", cur.ID)
		}
		cur = parent
	}
}

func describeDown(n *Node) string {
	if n.Failed {
		return "failed"
	}
	return "unpowered"
}

// AttachedHost returns the host whose root port disk currently reaches, or
// an error if the path is broken.
func (f *Fabric) AttachedHost(disk NodeID) (string, error) {
	path, err := f.PathToRoot(disk)
	if err != nil {
		return "", err
	}
	return f.nodes[path[len(path)-1]].Host, nil
}

// SwitchSetting is a required (switch, selection) pair on a routing path.
type SwitchSetting struct {
	Switch NodeID
	Sel    int
}

// RouteTo computes the unique switch settings required to connect disk to
// host, regardless of current switch state (GETSWITCH in Algorithm 1). The
// settings are returned leaf-to-root. Failed/unpowered components on the
// route make it invalid.
func (f *Fabric) RouteTo(disk NodeID, host string) ([]SwitchSetting, error) {
	n, ok := f.nodes[disk]
	if !ok || n.Kind != KindDisk {
		return nil, fmt.Errorf("fabric: unknown disk %s", disk)
	}
	var settings []SwitchSetting
	cur := n
	for steps := 0; steps <= len(f.nodes); steps++ {
		if cur.Failed || !cur.Powered {
			return nil, fmt.Errorf("%w: via %s (%s)", ErrNoPath, cur.ID, describeDown(cur))
		}
		switch cur.Kind {
		case KindRootPort:
			if cur.Host == host {
				return settings, nil
			}
			return nil, fmt.Errorf("%w: %s reaches %s, not %s", ErrNoPath, disk, cur.Host, host)
		case KindSwitch:
			// Try each upstream side; exactly one can lead to host in a
			// tree-of-choices fabric.
			for side := 0; side < 2; side++ {
				up := cur.Ups[side]
				if f.leadsToHost(up.Parent, host, len(f.nodes)) {
					settings = append(settings, SwitchSetting{Switch: cur.ID, Sel: side})
					cur = f.nodes[up.Parent]
					goto next
				}
			}
			return nil, fmt.Errorf("%w: %s has no side toward %s", ErrNoPath, cur.ID, host)
		default:
			parent, ok := f.nodes[cur.Up.Parent]
			if !ok {
				return nil, fmt.Errorf("%w: dangling above %s", ErrNoPath, cur.ID)
			}
			cur = parent
		}
	next:
	}
	return nil, fmt.Errorf("fabric: cycle detected routing %s to %s", disk, host)
}

// leadsToHost reports whether following upward choices from node can reach
// host's root port through healthy components.
func (f *Fabric) leadsToHost(id NodeID, host string, budget int) bool {
	if budget < 0 {
		return false
	}
	n, ok := f.nodes[id]
	if !ok || n.Failed || !n.Powered {
		return false
	}
	switch n.Kind {
	case KindRootPort:
		return n.Host == host
	case KindSwitch:
		return f.leadsToHost(n.Ups[0].Parent, host, budget-1) ||
			f.leadsToHost(n.Ups[1].Parent, host, budget-1)
	default:
		return f.leadsToHost(n.Up.Parent, host, budget-1)
	}
}

// ReachableHosts returns the hosts disk can reach under some switch
// assignment through healthy components, sorted.
func (f *Fabric) ReachableHosts(disk NodeID) []string {
	var out []string
	for _, h := range f.hosts {
		if _, err := f.RouteTo(disk, h); err == nil {
			out = append(out, h)
		}
	}
	return out
}

// SetSwitch turns sw to sel, firing the turn observer. It is the low-level
// actuation used by the microcontroller; Controllers should go through
// Plan/Apply (Algorithm 1) instead.
func (f *Fabric) SetSwitch(sw NodeID, sel int) error {
	n, ok := f.nodes[sw]
	if !ok || n.Kind != KindSwitch {
		return fmt.Errorf("fabric: unknown switch %s", sw)
	}
	if sel != 0 && sel != 1 {
		return fmt.Errorf("fabric: switch %s selection %d", sw, sel)
	}
	if n.Failed {
		return fmt.Errorf("fabric: switch %s failed", sw)
	}
	if n.Sel == sel {
		return nil
	}
	old := n.Sel
	n.Sel = sel
	if f.onSwitchTurn != nil {
		f.onSwitchTurn(sw, old, sel)
	}
	return nil
}

// Fail marks a node failed (fault injection). Per §IV-E a switch or bridge
// shares a failure unit with its adjacent hub or disk; callers model that by
// failing the hub/disk node itself.
func (f *Fabric) Fail(id NodeID) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("fabric: unknown node %s", id)
	}
	n.Failed = true
	return nil
}

// Repair clears a node's failed flag (component replaced by the operator).
func (f *Fabric) Repair(id NodeID) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("fabric: unknown node %s", id)
	}
	n.Failed = false
	return nil
}

// SetPower opens or closes the node's supply relay (disks and hubs).
func (f *Fabric) SetPower(id NodeID, on bool) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("fabric: unknown node %s", id)
	}
	if n.Kind != KindDisk && n.Kind != KindHub {
		return fmt.Errorf("fabric: %s has no power relay", id)
	}
	n.Powered = on
	return nil
}

// VisibleChild is one edge of a host's visible USB tree.
type VisibleChild struct {
	Parent NodeID // hub or root port
	Slot   int
	Child  NodeID // hub or disk (switches/bridges are transparent)
}

// VisibleTree returns host's visible USB tree edges in deterministic
// (BFS, slot-sorted) order: what the host's controller would enumerate with
// the current switch assignment, skipping transparent switches and pruning
// failed or unpowered subtrees.
func (f *Fabric) VisibleTree(host string) []VisibleChild {
	rootID := NodeID("root:" + host)
	if _, ok := f.nodes[rootID]; !ok {
		return nil
	}
	var out []VisibleChild
	queue := []NodeID{rootID}
	for len(queue) > 0 {
		parent := queue[0]
		queue = queue[1:]
		pn := f.nodes[parent]
		for slot := 0; slot < pn.FanIn; slot++ {
			child, ok := f.resolveVisible(parent, slot)
			if !ok {
				continue
			}
			cn := f.nodes[child]
			if cn.Failed || !cn.Powered {
				continue
			}
			out = append(out, VisibleChild{Parent: parent, Slot: slot, Child: child})
			if cn.Kind == KindHub {
				queue = append(queue, child)
			}
		}
	}
	return out
}

// resolveVisible resolves parent's slot through any chain of switches to the
// first hub or disk, honoring current selections.
func (f *Fabric) resolveVisible(parent NodeID, slot int) (NodeID, bool) {
	cur, ok := f.downAt(parent, slot)
	if !ok {
		return "", false
	}
	for budget := len(f.nodes); budget >= 0; budget-- {
		n := f.nodes[cur]
		if n.Kind != KindSwitch {
			return cur, true
		}
		if n.Failed || !n.Powered {
			return "", false
		}
		next, ok := f.downAt(cur, 0)
		if !ok {
			return "", false
		}
		cur = next
	}
	return "", false
}

// BOM counts the fabric's bill of materials for the cost model.
type BOM struct {
	Hubs     int
	Switches int
	Bridges  int // one per disk
	Disks    int
	Hosts    int
}

// BOM returns component counts.
func (f *Fabric) BOM() BOM {
	var b BOM
	for _, n := range f.nodes {
		switch n.Kind {
		case KindHub:
			b.Hubs++
		case KindSwitch:
			b.Switches++
		case KindDisk:
			b.Disks++
			b.Bridges++
		case KindRootPort:
			b.Hosts++
		}
	}
	return b
}
