package fabric

import (
	"errors"
	"fmt"
	"time"
)

// This file models the fabric's control plane (§III-B): two redundant
// microcontrollers whose output signals are XOR-ed together to form the
// switch control lines, plus the power relays on disk and hub supplies.
// During normal operation only one microcontroller is powered; when control
// of it is lost (its host dies, or the board itself fails) the other one is
// powered on and takes over — because of the XOR it can reach any desired
// switch state regardless of the frozen outputs of its dead twin.

// Control-plane actuation latencies.
const (
	// SwitchTurnDelay is the per-switch actuation time (signal settle +
	// mux re-train).
	SwitchTurnDelay = 20 * time.Millisecond
	// RelayDelay is the power-relay actuation time.
	RelayDelay = 50 * time.Millisecond
	// MCUCommandDelay is the USB round trip to the microcontroller.
	MCUCommandDelay = 5 * time.Millisecond
)

// Errors returned by the control plane.
var (
	// ErrMCUUnreachable is returned for a command to a powered-off or
	// failed microcontroller, or one whose USB host is down.
	ErrMCUUnreachable = errors.New("fabric: microcontroller unreachable")
)

// Microcontroller is one Arduino-class board driving switch and relay
// signal lines. Its outputs hold their last value while powered and read as
// zero when unpowered.
type Microcontroller struct {
	ID string
	// Host is the machine this MCU is USB-attached to; it is reachable
	// only through that host.
	Host string

	powered   bool
	failed    bool
	switchOut map[NodeID]int  // 0/1 signal per switch line
	relayOut  map[NodeID]bool // relay line per disk/hub
}

// NewMicrocontroller creates an unpowered MCU attached to host.
func NewMicrocontroller(id, host string) *Microcontroller {
	return &Microcontroller{
		ID:        id,
		Host:      host,
		switchOut: make(map[NodeID]int),
		relayOut:  make(map[NodeID]bool),
	}
}

// Powered reports whether the MCU has power.
func (m *Microcontroller) Powered() bool { return m.powered }

// Failed reports a dead board.
func (m *Microcontroller) Failed() bool { return m.failed }

// Fail kills the board (fault injection).
func (m *Microcontroller) Fail() { m.failed = true }

// switchSignal is the MCU's contribution to a switch line (0 when off).
func (m *Microcontroller) switchSignal(sw NodeID) int {
	if !m.powered || m.failed {
		return 0
	}
	return m.switchOut[sw]
}

func (m *Microcontroller) relaySignal(id NodeID) bool {
	if !m.powered || m.failed {
		return false
	}
	return m.relayOut[id]
}

// ControlPlane ties the two MCUs to the fabric and a scheduler.
type ControlPlane struct {
	fabric   *Fabric
	mcus     [2]*Microcontroller
	schedule func(time.Duration, func())
	// hostUp tells the plane whether an MCU's USB host is alive; nil means
	// always up (standalone fabric tests).
	hostUp func(host string) bool
	// relayDefaultOn: relays are normally-closed, so everything has power
	// until a relay line is asserted. Relay line asserted == power cut.
	// (This matches "only one MCU powered in normal operation" — an
	// unpowered control plane must not cut disk power.)
}

// NewControlPlane wires two MCUs to the fabric. Initially mcus[0] (the
// primary) is powered on.
func NewControlPlane(f *Fabric, a, b *Microcontroller, schedule func(time.Duration, func())) *ControlPlane {
	a.powered = true
	cp := &ControlPlane{fabric: f, mcus: [2]*Microcontroller{a, b}, schedule: schedule}
	// Align the powered MCU's outputs with the fabric's current switch
	// state so enabling it does not glitch the topology.
	for _, sw := range f.Switches() {
		a.switchOut[sw] = f.Node(sw).Sel
	}
	return cp
}

// SetHostUp installs the host-liveness oracle.
func (cp *ControlPlane) SetHostUp(fn func(host string) bool) { cp.hostUp = fn }

// MCU returns the i-th microcontroller (0 = primary).
func (cp *ControlPlane) MCU(i int) *Microcontroller { return cp.mcus[i] }

// PowerOnMCU powers MCU i, first synchronizing its outputs so the XOR-ed
// lines keep their current values at the instant it joins (no glitch).
func (cp *ControlPlane) PowerOnMCU(i int) {
	m := cp.mcus[i]
	if m.powered {
		return
	}
	other := cp.mcus[1-i]
	for _, sw := range cp.fabric.Switches() {
		// After power-on: m.out XOR other.signal == current fabric state.
		m.switchOut[sw] = cp.fabric.Node(sw).Sel ^ other.switchSignal(sw)
	}
	for id, v := range other.relayOut {
		_ = v
		m.relayOut[id] = false // keep relay lines as-is via other MCU
	}
	m.powered = true
}

// PowerOffMCU cuts MCU i's power. Its outputs drop to zero, which flips
// every XOR-ed line it was asserting — the reason the Controller must
// synchronize the twin before a deliberate power-off (Failover does).
func (cp *ControlPlane) PowerOffMCU(i int) {
	m := cp.mcus[i]
	if !m.powered {
		return
	}
	m.powered = false
	cp.applyLines()
}

// Failover synchronizes the standby MCU to current line state, powers it
// on, then powers off the old primary. Used for planned handover; for a
// crashed primary host, call PowerOnMCU(standby) then drive through it.
func (cp *ControlPlane) Failover(toStandby int) {
	cp.PowerOnMCU(toStandby)
	old := cp.mcus[1-toStandby]
	if old.powered {
		// Fold the old MCU's contribution into the standby before cutting
		// power, so the XOR stays constant.
		for _, sw := range cp.fabric.Switches() {
			cp.mcus[toStandby].switchOut[sw] ^= old.switchSignal(sw)
		}
		old.powered = false
	}
	cp.applyLines()
}

// reachable reports whether MCU i can execute commands.
func (cp *ControlPlane) reachable(i int) bool {
	m := cp.mcus[i]
	if !m.powered || m.failed {
		return false
	}
	if cp.hostUp != nil && !cp.hostUp(m.Host) {
		return false
	}
	return true
}

// Reachable exposes reachability for the Controller's health checks.
func (cp *ControlPlane) Reachable(i int) bool { return cp.reachable(i) }

// TurnSwitches asks MCU i to realize the given settings. Switches turn one
// by one (MCU command + actuation per switch); done fires with the first
// error or nil after all turns. The per-turn fabric effect (USB subtree
// detach/attach) happens through the fabric's turn observer.
func (cp *ControlPlane) TurnSwitches(i int, settings []SwitchSetting, done func(error)) {
	if !cp.reachable(i) {
		cp.schedule(MCUCommandDelay, func() { done(fmt.Errorf("%w: %s", ErrMCUUnreachable, cp.mcus[i].ID)) })
		return
	}
	m := cp.mcus[i]
	var step func(idx int)
	step = func(idx int) {
		if idx >= len(settings) {
			done(nil)
			return
		}
		if !cp.reachable(i) {
			done(fmt.Errorf("%w: %s mid-command", ErrMCUUnreachable, m.ID))
			return
		}
		st := settings[idx]
		other := cp.mcus[1-i]
		// Drive this MCU's line so the XOR equals the desired state.
		m.switchOut[st.Switch] = st.Sel ^ other.switchSignal(st.Switch)
		cp.schedule(MCUCommandDelay+SwitchTurnDelay, func() {
			if err := cp.fabric.SetSwitch(st.Switch, st.Sel); err != nil {
				done(err)
				return
			}
			step(idx + 1)
		})
	}
	step(0)
}

// SetPower asks MCU i to open/close the supply relay of a disk or hub.
func (cp *ControlPlane) SetPower(i int, id NodeID, on bool, done func(error)) {
	if !cp.reachable(i) {
		cp.schedule(MCUCommandDelay, func() { done(fmt.Errorf("%w: %s", ErrMCUUnreachable, cp.mcus[i].ID)) })
		return
	}
	m := cp.mcus[i]
	m.relayOut[id] = !on // asserted line cuts power (normally-closed relay)
	cp.schedule(MCUCommandDelay+RelayDelay, func() {
		if err := cp.fabric.SetPower(id, !cp.relayLine(id)); err != nil {
			done(err)
			return
		}
		done(nil)
	})
}

// relayLine is the XOR-free combined relay line (either MCU can cut power).
func (cp *ControlPlane) relayLine(id NodeID) bool {
	return cp.mcus[0].relaySignal(id) || cp.mcus[1].relaySignal(id)
}

// applyLines re-evaluates every XOR-ed switch line against the fabric,
// used after an MCU power transition (whose line contributions changed).
func (cp *ControlPlane) applyLines() {
	for _, sw := range cp.fabric.Switches() {
		want := cp.mcus[0].switchSignal(sw) ^ cp.mcus[1].switchSignal(sw)
		_ = cp.fabric.SetSwitch(sw, want)
	}
	for id := range cp.allRelayIDs() {
		_ = cp.fabric.SetPower(id, !cp.relayLine(id))
	}
}

func (cp *ControlPlane) allRelayIDs() map[NodeID]struct{} {
	out := make(map[NodeID]struct{})
	for _, m := range cp.mcus {
		for id := range m.relayOut {
			out[id] = struct{}{}
		}
	}
	return out
}
