package power

import (
	"math"
	"testing"
	"time"

	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/simtime"
)

func within(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*want
}

func TestTableIVHubPower(t *testing.T) {
	want := []float64{0.21, 1.06, 1.23, 1.47, 1.67}
	for n, w := range want {
		got := HubWatts(n)
		if !within(got, w, 0.02) {
			t.Errorf("HubWatts(%d) = %.3f, want %.2f (Table IV)", n, got, w)
		}
	}
}

func TestTableIIIDiskWithBridge(t *testing.T) {
	p := disk.DT01ACA300()
	cases := []struct {
		st   disk.State
		want float64
	}{
		{disk.StateSpunDown, 1.56},
		{disk.StateIdle, 5.76},
		{disk.StateActive, 7.56},
	}
	for _, c := range cases {
		got := DiskWithBridgeWatts(p, c.st)
		if !within(got, c.want, 0.01) {
			t.Errorf("disk+bridge %v = %.2f, want %.2f (Table III)", c.st, got, c.want)
		}
	}
	if DiskWithBridgeWatts(p, disk.StatePoweredOff) != 0 {
		t.Error("powered-off disk+bridge should draw nothing")
	}
}

func newProtoFabric(t *testing.T) *fabric.Fabric {
	t.Helper()
	f, err := fabric.Prototype()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTableVUStoreSpinning(t *testing.T) {
	f := newProtoFabric(t)
	p := disk.DT01ACA300()
	states := make(map[fabric.NodeID]disk.State)
	for _, d := range f.Disks() {
		states[d] = disk.StateActive
	}
	r := UnitPower(f, p, states, 6, 1)
	// Paper Table V: UStore spinning = 166.8W. Our decomposition lands
	// within 2% (hub port accounting differs slightly from their meter).
	if !within(r.WallW, 166.8, 0.02) {
		t.Errorf("UStore spinning = %.1fW, paper 166.8W (load %.1f, fabric %.1f)",
			r.WallW, r.LoadW, r.FabricW)
	}
	// The paper calls the interconnect fabric "only 13.6W".
	if r.FabricW < 10 || r.FabricW > 15 {
		t.Errorf("fabric = %.1fW, paper ~13.6W", r.FabricW)
	}
}

func TestTableVUStorePoweredOff(t *testing.T) {
	f := newProtoFabric(t)
	p := disk.DT01ACA300()
	states := make(map[fabric.NodeID]disk.State)
	for _, d := range f.Disks() {
		states[d] = disk.StatePoweredOff
	}
	r := UnitPower(f, p, states, 6, 1)
	// Paper: 22.1W. Allow 10%: residual hub trickle draw differs.
	if !within(r.WallW, 22.1, 0.10) {
		t.Errorf("UStore powered-off = %.1fW, paper 22.1W", r.WallW)
	}
	if r.DisksW != 0 {
		t.Errorf("disks draw %.2fW while powered off", r.DisksW)
	}
}

func TestTableVUStoreFabricPoweredDownToo(t *testing.T) {
	// §IV-F: powering off disks lets UStore cut the fabric too.
	f := newProtoFabric(t)
	p := disk.DT01ACA300()
	states := make(map[fabric.NodeID]disk.State)
	for _, d := range f.Disks() {
		states[d] = disk.StatePoweredOff
	}
	for _, h := range f.Hubs() {
		if err := f.SetPower(h, false); err != nil {
			t.Fatal(err)
		}
	}
	r := UnitPower(f, p, states, 6, 1)
	if r.HubsW != 0 {
		t.Errorf("hubs draw %.2fW while unpowered", r.HubsW)
	}
	full := UnitPower(newProtoFabric(t), p, states, 6, 1)
	if r.WallW >= full.WallW {
		t.Errorf("cutting fabric power did not reduce draw: %.1f vs %.1f", r.WallW, full.WallW)
	}
}

func TestTableVPergamum(t *testing.T) {
	p := disk.DT01ACA300()
	spin := PergamumWatts(p, 16, true)
	off := PergamumWatts(p, 16, false)
	if !within(spin, 193.5, 0.03) {
		t.Errorf("Pergamum spinning = %.1fW, paper 193.5W", spin)
	}
	if !within(off, 28.9, 0.05) {
		t.Errorf("Pergamum powered-off = %.1fW, paper 28.9W", off)
	}
}

func TestTableVDD860(t *testing.T) {
	if got := DD860Watts(15, true); got != 222.5 {
		t.Errorf("DD860 spinning = %.1f", got)
	}
	if got := DD860Watts(15, false); got != 83.5 {
		t.Errorf("DD860 off = %.1f", got)
	}
	// Scaled to 16 disks it must exceed both other solutions.
	p := disk.DT01ACA300()
	if DD860Watts(16, true) <= PergamumWatts(p, 16, true) {
		t.Error("DD860 should draw more than Pergamum")
	}
}

func TestTableVOrdering(t *testing.T) {
	// The paper's qualitative result: UStore < Pergamum < DD860 in both
	// states.
	f := newProtoFabric(t)
	p := disk.DT01ACA300()
	active := make(map[fabric.NodeID]disk.State)
	off := make(map[fabric.NodeID]disk.State)
	for _, d := range f.Disks() {
		active[d] = disk.StateActive
		off[d] = disk.StatePoweredOff
	}
	uSpin := UnitPower(f, p, active, 6, 1).WallW
	uOff := UnitPower(f, p, off, 6, 1).WallW
	if !(uSpin < PergamumWatts(p, 16, true) && PergamumWatts(p, 16, true) < DD860Watts(16, true)) {
		t.Errorf("spinning order violated: UStore %.1f Pergamum %.1f DD860 %.1f",
			uSpin, PergamumWatts(p, 16, true), DD860Watts(16, true))
	}
	if !(uOff < PergamumWatts(p, 16, false) && PergamumWatts(p, 16, false) < DD860Watts(16, false)) {
		t.Errorf("off order violated: UStore %.1f Pergamum %.1f DD860 %.1f",
			uOff, PergamumWatts(p, 16, false), DD860Watts(16, false))
	}
}

func TestMeterIntegratesEnergy(t *testing.T) {
	s := simtime.NewScheduler(1)
	m := NewMeter(func() time.Duration { return s.Now() })
	m.SetDraw("disk", 100)
	s.RunFor(time.Hour)
	if got := m.EnergyWh(); !within(got, 100, 0.001) {
		t.Fatalf("energy = %.2f Wh, want 100", got)
	}
	m.SetDraw("disk", 0)
	s.RunFor(time.Hour)
	if got := m.EnergyWh(); !within(got, 100, 0.001) {
		t.Fatalf("energy accrued while draw 0: %.2f", got)
	}
	m.SetDraw("disk", 50)
	m.SetDraw("fan", 25)
	if m.Watts() != 75 {
		t.Fatalf("Watts = %v", m.Watts())
	}
}

func TestMeterRejectsNegativeDraw(t *testing.T) {
	s := simtime.NewScheduler(1)
	m := NewMeter(func() time.Duration { return s.Now() })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative draw")
		}
	}()
	m.SetDraw("x", -1)
}

func TestMeterTrackDisk(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := disk.New(s, "d0", disk.DT01ACA300(), disk.AttachFabric)
	m := NewMeter(func() time.Duration { return s.Now() })
	m.TrackDisk("d0", d)
	// Spun down: disk 0.05 + bridge 1.51.
	if !within(m.Watts(), 1.56, 0.01) {
		t.Fatalf("spun-down draw = %.2f", m.Watts())
	}
	d.SpinUp()
	s.Run()
	if !within(m.Watts(), 5.76, 0.01) {
		t.Fatalf("idle draw = %.2f", m.Watts())
	}
	// Submit starts service synchronously on an idle disk, so the draw is
	// already the Table III active figure.
	d.Submit(&disk.Request{Op: disk.Op{Read: true, Size: 4 << 20, Pattern: disk.Sequential}})
	if !within(m.Watts(), 7.56, 0.01) {
		t.Fatalf("active draw = %.2f", m.Watts())
	}
	s.Run()
	if !within(m.Watts(), 5.76, 0.01) {
		t.Fatalf("back-to-idle draw = %.2f", m.Watts())
	}
}
