// Package power models the electrical draw of a UStore deploy unit and the
// comparison solutions, calibrated to the paper's measurements:
//
//   - Table III: one disk over SATA vs over a USB bridge (bridge adds ~1W).
//   - Table IV: hub draw vs number of connected disks (0.21W empty, large
//     first-device step, then ~0.2W per additional device).
//   - Table V: whole-solution comparison at 16 disks — DD860/ES30,
//     Pergamum (no NVRAM), and UStore — in "spinning" and "powered off"
//     states.
//
// The package provides per-component draw functions, whole-unit aggregation
// over a fabric topology, solution models for the baselines, and a Meter
// that integrates energy over simulated time.
package power

import (
	"fmt"
	"time"

	"ustore/internal/disk"
	"ustore/internal/fabric"
)

// Component draw constants (watts), from the paper's measurements and the
// cited spec sheets.
const (
	// SwitchWatts is the USB 3.0 2:1 mux draw (§VII-C cites ~0.06W).
	SwitchWatts = 0.06
	// HubBaseWatts is an empty powered hub (Table IV, 0 disks).
	HubBaseWatts = 0.21
	// HubFirstDeviceWatts is the first connected device's increment.
	HubFirstDeviceWatts = 0.85
	// HubExtraDeviceWatts is each further device's increment.
	HubExtraDeviceWatts = 0.205
	// FanWatts per chassis fan; the 16-disk unit uses 6.
	FanWatts = 1.0
	// HostAdaptorWatts per USB 3.0 host adaptor; one per host, 4 total.
	HostAdaptorWatts = 2.5
	// PSUEfficiency models the 90plus supply: wall = load / efficiency.
	PSUEfficiency = 0.90
	// MCUWatts per control-plane microcontroller board when powered.
	MCUWatts = 0.25
)

// BridgeWatts returns the SATA-USB bridge's own draw for a disk state —
// the Table III delta between the "USB bridge" and "SATA" rows. The bridge
// draws *more* when the disk sleeps because it keeps the USB link trained
// while the drive's own electronics are down.
func BridgeWatts(st disk.State) float64 {
	switch st {
	case disk.StatePoweredOff:
		return 0
	case disk.StateSpunDown:
		return 1.51
	case disk.StateIdle:
		return 1.05
	default: // active, spinning up
		return 0.90
	}
}

// hubWattsTable is the measured Table IV curve (0..4 connected disks). The
// increments are irregular, so the calibrated values are kept verbatim and
// extrapolated linearly past fan-in 4.
var hubWattsTable = [...]float64{0.21, 1.06, 1.23, 1.47, 1.67}

// HubSuspendedLinkWatts is the draw of a downstream port whose link is in
// U3 suspend (a child hub with no active storage below it).
const HubSuspendedLinkWatts = 0.10

// HubWatts returns a powered hub's draw with n connected (active)
// downstream devices, matching Table IV: 0.21, 1.06, 1.23, 1.47, 1.67.
func HubWatts(n int) float64 {
	if n < 0 {
		n = 0
	}
	if n < len(hubWattsTable) {
		return hubWattsTable[n]
	}
	last := len(hubWattsTable) - 1
	return hubWattsTable[last] + float64(n-last)*HubExtraDeviceWatts
}

// DiskWithBridgeWatts returns the Table III "USB bridge" row: disk plus
// bridge at the wall.
func DiskWithBridgeWatts(p disk.Params, st disk.State) float64 {
	return p.Power(st) + BridgeWatts(st)
}

// UnitReport decomposes a deploy unit's draw.
type UnitReport struct {
	DisksW      float64 // disks including their bridges
	HubsW       float64
	SwitchesW   float64
	FansW       float64
	AdaptorsW   float64
	MCUW        float64
	LoadW       float64 // sum before PSU loss
	WallW       float64 // at the wall, after PSU efficiency
	FabricW     float64 // hubs + switches (the paper's "interconnect fabric")
	DiskStates  map[fabric.NodeID]disk.State
	PoweredHubs int
}

// UnitPower computes the unit's draw from the fabric topology and each
// disk's state. Hub draw depends on how many of its downstream devices are
// powered; unpowered hubs draw nothing. fans and adaptors follow the
// prototype (6 fans, one adaptor per host). mcus is how many control-plane
// boards are powered (1 in normal operation).
func UnitPower(f *fabric.Fabric, p disk.Params, states map[fabric.NodeID]disk.State, fans, mcus int) UnitReport {
	r := UnitReport{DiskStates: states}
	for _, d := range f.Disks() {
		st, ok := states[d]
		if !ok {
			st = disk.StateIdle
		}
		if !f.Node(d).Powered {
			st = disk.StatePoweredOff
		}
		r.DisksW += p.Power(st) + BridgeWatts(st)
	}
	for _, h := range f.Hubs() {
		if !f.Node(h).Powered {
			continue
		}
		r.PoweredHubs++
		active, suspended := 0, 0
		for _, e := range visibleDownstream(f, h) {
			cn := f.Node(e)
			if !cn.Powered || cn.Failed {
				continue
			}
			switch cn.Kind {
			case fabric.KindDisk:
				// A powered-off disk draws no hub port power either.
				if st, ok := states[e]; ok && st == disk.StatePoweredOff {
					continue
				}
				active++
			case fabric.KindHub:
				// A child hub with no active storage below keeps its
				// uplink in U3 suspend.
				if subtreeHasActiveStorage(f, e, states) {
					active++
				} else {
					suspended++
				}
			}
		}
		r.HubsW += HubWatts(active) + float64(suspended)*HubSuspendedLinkWatts
	}
	for range f.Switches() {
		r.SwitchesW += SwitchWatts
	}
	r.FansW = float64(fans) * FanWatts
	r.AdaptorsW = float64(len(f.Hosts())) * HostAdaptorWatts
	r.MCUW = float64(mcus) * MCUWatts
	r.FabricW = r.HubsW + r.SwitchesW
	r.LoadW = r.DisksW + r.HubsW + r.SwitchesW + r.FansW + r.AdaptorsW + r.MCUW
	r.WallW = r.LoadW / PSUEfficiency
	return r
}

// subtreeHasActiveStorage reports whether any disk electrically below node
// is powered and not in the powered-off state.
func subtreeHasActiveStorage(f *fabric.Fabric, node fabric.NodeID, states map[fabric.NodeID]disk.State) bool {
	host := hostOfTree(f, node)
	if host == "" {
		return false
	}
	under := map[fabric.NodeID]bool{node: true}
	for _, e := range f.VisibleTree(host) {
		if !under[e.Parent] {
			continue
		}
		cn := f.Node(e.Child)
		if cn.Failed || !cn.Powered {
			continue
		}
		if cn.Kind == fabric.KindHub {
			under[e.Child] = true
			continue
		}
		if st, ok := states[e.Child]; !ok || st != disk.StatePoweredOff {
			return true
		}
	}
	return false
}

// visibleDownstream lists hub h's electrically-connected direct children
// (disks or hubs), resolving transparent switches.
func visibleDownstream(f *fabric.Fabric, h fabric.NodeID) []fabric.NodeID {
	var out []fabric.NodeID
	for _, e := range f.VisibleTree(hostOfTree(f, h)) {
		if e.Parent == h {
			out = append(out, e.Child)
		}
	}
	return out
}

// hostOfTree finds which host's tree currently contains node h ("" if
// disconnected; its children then draw no port power anyway).
func hostOfTree(f *fabric.Fabric, h fabric.NodeID) string {
	for _, host := range f.Hosts() {
		for _, e := range f.VisibleTree(host) {
			if e.Child == h {
				return host
			}
		}
	}
	return ""
}

// --- Baseline solution models (Table V) ---

// Pergamum tome constants: a Cubieboard3-class ARM plus an Ethernet port per
// disk (NVRAM removed for the side-by-side comparison, as the paper does).
const (
	pergamumARMActiveW  = 2.5
	pergamumARMIdleW    = 0.8
	pergamumEthActiveW  = 1.5
	pergamumEthIdleW    = 0.5
	pergamumFans        = 6
	dd860SpinningPer15W = 222.5 // quoted from Li et al. (FAST'12) via Table V
	dd860OffPer15W      = 83.5
)

// PergamumWatts returns the Pergamum model's wall draw for n disks, using
// the same disks, fans, and PSU as the UStore unit.
func PergamumWatts(p disk.Params, n int, spinning bool) float64 {
	var load float64
	if spinning {
		load = float64(n)*(p.Power(disk.StateActive)+pergamumARMActiveW+pergamumEthActiveW) + pergamumFans*FanWatts
	} else {
		// Disks powered off; ARM and NIC stay up to keep tomes reachable.
		load = float64(n)*(pergamumARMIdleW+pergamumEthIdleW) + pergamumFans*FanWatts
	}
	return load / PSUEfficiency
}

// DD860Watts returns the EMC DD860/ES30 figure scaled from the quoted
// 15-disk shelf measurement.
func DD860Watts(n int, spinning bool) float64 {
	per15 := dd860OffPer15W
	if spinning {
		per15 = dd860SpinningPer15W
	}
	return per15 * float64(n) / 15.0
}

// Meter integrates component power draws over simulated time into energy.
type Meter struct {
	clock  func() time.Duration
	draws  map[string]float64
	energy float64 // joules
	last   time.Duration
}

// NewMeter creates a meter reading zero.
func NewMeter(clock func() time.Duration) *Meter {
	return &Meter{clock: clock, draws: make(map[string]float64)}
}

// SetDraw updates one component's draw, accruing energy at the previous
// total up to now.
func (m *Meter) SetDraw(component string, watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("power: negative draw %v for %s", watts, component))
	}
	m.accrue()
	m.draws[component] = watts
}

// Watts returns the current total draw.
func (m *Meter) Watts() float64 {
	total := 0.0
	for _, w := range m.draws {
		total += w
	}
	return total
}

// EnergyJoules returns energy accumulated so far.
func (m *Meter) EnergyJoules() float64 {
	m.accrue()
	return m.energy
}

// EnergyWh returns accumulated energy in watt-hours.
func (m *Meter) EnergyWh() float64 { return m.EnergyJoules() / 3600 }

func (m *Meter) accrue() {
	now := m.clock()
	dt := (now - m.last).Seconds()
	if dt > 0 {
		m.energy += m.Watts() * dt
	}
	m.last = now
}

// TrackDisk wires a disk's state transitions (and its bridge) into the
// meter under the given component name.
func (m *Meter) TrackDisk(name string, d *disk.Disk) {
	update := func(st disk.State) {
		m.SetDraw(name, d.Params().Power(st)+BridgeWatts(st))
	}
	update(d.State())
	d.OnStateChange(func(old, new disk.State) { update(new) })
}
