package usb

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ustore/internal/obs"
)

// This file implements a fluid-flow bandwidth model with max-min fair
// sharing, used for the paper's throughput experiments (Table II columns,
// Figure 5, and the 540/2160 MB/s duplex aggregates).
//
// Each active workload stream is a Flow with a standalone demand (the rate a
// single disk would sustain for that workload, from the calibrated disk
// model) and a path of Resources it consumes: the per-direction byte
// capacity of every USB link from the disk's bridge up to the host root
// port, and — for small transfers — the host controller's command dispatch
// capacity. Rates are assigned by progressive filling (water-filling): all
// unfrozen flows rise together until a resource saturates, flows through
// that resource freeze, repeat. This is the standard max-min fair
// allocation TCP-like duplex links converge to.

// Resource is a capacity-constrained element of the data path.
type Resource struct {
	// ID names the resource, e.g. "link:hub2->root:h1/up" or "cmd:h1".
	ID string
	// Capacity is in units/sec (bytes/sec for links, commands/sec for
	// command dispatch).
	Capacity float64
}

// Flow is one stream's demand over a set of resources.
type Flow struct {
	ID string
	// Demand is the flow's standalone rate in bytes/sec.
	Demand float64
	// UnitsPerByte maps resource ID -> how many units of that resource one
	// byte of this flow consumes. Links are 1.0; the command resource is
	// 1/transferSize (one command per transfer).
	UnitsPerByte map[string]float64

	// Remaining bytes to move; <0 means open-ended (runs until removed).
	remaining float64
	rate      float64
	done      func()
	lastTick  time.Duration
	moved     float64
}

// Rate returns the flow's current allocated rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Moved returns the total bytes moved so far.
func (f *Flow) Moved() float64 { return f.moved }

// FlowSim owns resources and flows and advances them on the simulation
// scheduler.
type FlowSim struct {
	clock     func() time.Duration
	schedule  func(time.Duration, func()) func() // returns cancel
	resources map[string]*Resource
	flows     map[string]*Flow
	nextEvent func() // cancel for pending completion event

	rec *obs.Recorder
}

// SetRecorder publishes per-link utilization gauges
// (usb_link_utilization_ratio{link=...}) updated on every rebalance.
func (fs *FlowSim) SetRecorder(rec *obs.Recorder) { fs.rec = rec }

// publishUtilization refreshes the per-resource utilization gauges.
func (fs *FlowSim) publishUtilization() {
	if fs.rec == nil {
		return
	}
	for id := range fs.resources {
		fs.rec.Gauge("usb", "link_utilization_ratio", obs.L("link", id)).Set(fs.Utilization(id))
	}
}

// NewFlowSim creates a flow simulator. schedule must return a cancel func
// for the scheduled event.
func NewFlowSim(clock func() time.Duration, schedule func(time.Duration, func()) func()) *FlowSim {
	return &FlowSim{
		clock:     clock,
		schedule:  schedule,
		resources: make(map[string]*Resource),
		flows:     make(map[string]*Flow),
	}
}

// SetResource creates or updates a resource capacity.
func (fs *FlowSim) SetResource(id string, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("usb: non-positive capacity %v for %s", capacity, id))
	}
	if r, ok := fs.resources[id]; ok {
		r.Capacity = capacity
	} else {
		fs.resources[id] = &Resource{ID: id, Capacity: capacity}
	}
	fs.rebalance()
}

// RemoveResource deletes a resource; flows no longer consume it.
func (fs *FlowSim) RemoveResource(id string) {
	delete(fs.resources, id)
	fs.rebalance()
}

// StartFlow adds a flow moving totalBytes (or open-ended if totalBytes < 0)
// and rebalances. done fires when the flow finishes naturally.
func (fs *FlowSim) StartFlow(f *Flow, totalBytes float64, done func()) {
	if f.Demand <= 0 {
		panic(fmt.Sprintf("usb: flow %s has non-positive demand", f.ID))
	}
	if _, dup := fs.flows[f.ID]; dup {
		panic(fmt.Sprintf("usb: duplicate flow id %s", f.ID))
	}
	for rid := range f.UnitsPerByte {
		if _, ok := fs.resources[rid]; !ok {
			panic(fmt.Sprintf("usb: flow %s references unknown resource %s", f.ID, rid))
		}
	}
	f.remaining = totalBytes
	f.done = done
	f.lastTick = fs.clock()
	fs.flows[f.ID] = f
	fs.rebalance()
}

// StopFlow removes a flow (its done callback does not fire).
func (fs *FlowSim) StopFlow(id string) {
	if _, ok := fs.flows[id]; !ok {
		return
	}
	fs.settle()
	delete(fs.flows, id)
	fs.rebalance()
}

// Flows returns the current flow count.
func (fs *FlowSim) Flows() int { return len(fs.flows) }

// Utilization returns current usage/capacity of a resource in [0,1].
func (fs *FlowSim) Utilization(resourceID string) float64 {
	r, ok := fs.resources[resourceID]
	if !ok {
		return 0
	}
	used := 0.0
	for _, f := range fs.flows {
		if u, ok := f.UnitsPerByte[resourceID]; ok {
			used += f.rate * u
		}
	}
	return used / r.Capacity
}

// settle credits progress at current rates since the last settle.
func (fs *FlowSim) settle() {
	now := fs.clock()
	for _, f := range fs.flows {
		dt := (now - f.lastTick).Seconds()
		if dt > 0 {
			progressed := f.rate * dt
			f.moved += progressed
			if f.remaining >= 0 {
				f.remaining -= progressed
				if f.remaining < 1e-6 {
					f.remaining = 0
				}
			}
		}
		f.lastTick = now
	}
}

// rebalance recomputes max-min fair rates and schedules the next completion.
func (fs *FlowSim) rebalance() {
	fs.settle()
	if fs.nextEvent != nil {
		fs.nextEvent()
		fs.nextEvent = nil
	}
	fs.assignRates()
	fs.publishUtilization()

	// Find the earliest finishing bounded flow.
	var nextID string
	nextAt := math.Inf(1)
	for id, f := range fs.flows {
		if f.remaining < 0 || f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < nextAt || (t == nextAt && id < nextID) {
			nextAt = t
			nextID = id
		}
	}
	if nextID == "" {
		return
	}
	id := nextID
	fs.nextEvent = fs.schedule(time.Duration(nextAt*float64(time.Second)), func() {
		fs.nextEvent = nil
		f := fs.flows[id]
		if f == nil {
			return
		}
		fs.settle()
		delete(fs.flows, id)
		if f.done != nil {
			f.done()
		}
		fs.rebalance()
	})
}

// assignRates runs progressive filling across all resources.
func (fs *FlowSim) assignRates() {
	type resState struct {
		residual float64
		flows    []*Flow
	}
	states := make(map[string]*resState, len(fs.resources))
	for id, r := range fs.resources {
		states[id] = &resState{residual: r.Capacity}
	}
	unfrozen := make([]*Flow, 0, len(fs.flows))
	ids := make([]string, 0, len(fs.flows))
	for id := range fs.flows {
		ids = append(ids, id)
	}
	sort.Strings(ids) // determinism
	for _, id := range ids {
		f := fs.flows[id]
		f.rate = 0
		unfrozen = append(unfrozen, f)
		for rid := range f.UnitsPerByte {
			states[rid].flows = append(states[rid].flows, f)
		}
	}
	frozen := make(map[*Flow]bool)
	for len(unfrozen) > 0 {
		// Max additional rate each unfrozen flow can take before some
		// constraint binds: its own demand, or a resource fills.
		delta := math.Inf(1)
		for _, f := range unfrozen {
			if d := f.Demand - f.rate; d < delta {
				delta = d
			}
		}
		for rid, st := range states {
			// Units consumed per unit rate increase across unfrozen flows.
			unitsPerRate := 0.0
			for _, f := range st.flows {
				if !frozen[f] {
					unitsPerRate += f.UnitsPerByte[rid]
				}
			}
			if unitsPerRate > 0 {
				if d := st.residual / unitsPerRate; d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) || delta < 0 {
			break
		}
		// Apply the increment.
		for _, f := range unfrozen {
			f.rate += delta
			for rid, u := range f.UnitsPerByte {
				states[rid].residual -= delta * u
			}
		}
		// Freeze flows at demand or on a saturated resource.
		const eps = 1e-9
		saturated := make(map[string]bool)
		for rid, st := range states {
			if st.residual <= eps*fs.resources[rid].Capacity {
				saturated[rid] = true
			}
		}
		var still []*Flow
		for _, f := range unfrozen {
			stop := f.rate >= f.Demand-eps*f.Demand
			if !stop {
				for rid := range f.UnitsPerByte {
					if saturated[rid] {
						stop = true
						break
					}
				}
			}
			if stop {
				frozen[f] = true
			} else {
				still = append(still, f)
			}
		}
		if len(still) == len(unfrozen) {
			break // no progress; numerical guard
		}
		unfrozen = still
	}
}
