package usb

import (
	"math"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func newFS(t *testing.T) (*simtime.Scheduler, *FlowSim) {
	t.Helper()
	s := simtime.NewScheduler(1)
	fs := NewFlowSim(
		func() time.Duration { return s.Now() },
		func(d time.Duration, fn func()) func() {
			ev := s.After(d, fn)
			return ev.Cancel
		})
	return s, fs
}

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestSingleFlowRunsAtDemand(t *testing.T) {
	s, fs := newFS(t)
	fs.SetResource("root/up", RootPortBytesPerSec)
	done := false
	fs.StartFlow(&Flow{ID: "f1", Demand: 185e6, UnitsPerByte: map[string]float64{"root/up": 1}}, 185e6, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("flow did not complete")
	}
	if !approx(s.Now().Seconds(), 1.0, 0.001) {
		t.Fatalf("185MB at 185MB/s took %v, want 1s", s.Now())
	}
}

func TestTwoFlowsShareRootEvenly(t *testing.T) {
	s, fs := newFS(t)
	fs.SetResource("root/up", 300e6)
	var doneAt []time.Duration
	for _, id := range []string{"f1", "f2"} {
		id := id
		fs.StartFlow(&Flow{ID: id, Demand: 185e6, UnitsPerByte: map[string]float64{"root/up": 1}},
			150e6, func() { doneAt = append(doneAt, s.Now()) })
	}
	// Both demand 185 but share 300 => 150 each. 150MB each => 1s each.
	s.Run()
	if len(doneAt) != 2 {
		t.Fatalf("completions = %d", len(doneAt))
	}
	for _, at := range doneAt {
		if !approx(at.Seconds(), 1.0, 0.001) {
			t.Fatalf("completion at %v, want 1s (fair share 150MB/s)", at)
		}
	}
}

func TestMaxMinFairnessWithSmallDemand(t *testing.T) {
	// small gets its full 50; big1/big2 split the remaining 250 => 125 each.
	_, fs := newFS(t)
	fs.SetResource("root/up", 300e6)
	fSmall := &Flow{ID: "small", Demand: 50e6, UnitsPerByte: map[string]float64{"root/up": 1}}
	fBig1 := &Flow{ID: "big1", Demand: 200e6, UnitsPerByte: map[string]float64{"root/up": 1}}
	fBig2 := &Flow{ID: "big2", Demand: 200e6, UnitsPerByte: map[string]float64{"root/up": 1}}
	fs.StartFlow(fSmall, -1, nil)
	fs.StartFlow(fBig1, -1, nil)
	fs.StartFlow(fBig2, -1, nil)
	if !approx(fSmall.Rate(), 50e6, 0.001) {
		t.Fatalf("small rate = %v, want 50e6", fSmall.Rate())
	}
	if !approx(fBig1.Rate(), 125e6, 0.001) || !approx(fBig2.Rate(), 125e6, 0.001) {
		t.Fatalf("big rates = %v/%v, want 125e6 each", fBig1.Rate(), fBig2.Rate())
	}
	if u := fs.Utilization("root/up"); !approx(u, 1.0, 0.001) {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestDuplexDirectionsIndependent(t *testing.T) {
	// Half the disks read (upstream), half write (downstream): total moves
	// 2x one direction's capacity — the paper's 540 MB/s per port effect.
	_, fs := newFS(t)
	fs.SetResource("root/up", 270e6)
	fs.SetResource("root/down", 270e6)
	var flows []*Flow
	for i := 0; i < 2; i++ {
		fr := &Flow{ID: "r" + string(rune('0'+i)), Demand: 185e6, UnitsPerByte: map[string]float64{"root/up": 1}}
		fw := &Flow{ID: "w" + string(rune('0'+i)), Demand: 185e6, UnitsPerByte: map[string]float64{"root/down": 1}}
		fs.StartFlow(fr, -1, nil)
		fs.StartFlow(fw, -1, nil)
		flows = append(flows, fr, fw)
	}
	total := 0.0
	for _, f := range flows {
		total += f.Rate()
	}
	if !approx(total, 540e6, 0.001) {
		t.Fatalf("duplex total = %v, want 540e6", total)
	}
}

func TestHubUplinkBottleneck(t *testing.T) {
	// 4 disks behind one hub: hub uplink 400MB/s binds before the per-disk
	// demand sum (4*185=740), root at 300 binds tighter still.
	_, fs := newFS(t)
	fs.SetResource("hub1/up", LinkBytesPerSec)
	fs.SetResource("root/up", RootPortBytesPerSec)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		f := &Flow{ID: "d" + string(rune('0'+i)), Demand: 185e6,
			UnitsPerByte: map[string]float64{"hub1/up": 1, "root/up": 1}}
		fs.StartFlow(f, -1, nil)
		flows = append(flows, f)
	}
	total := 0.0
	for _, f := range flows {
		total += f.Rate()
		if !approx(f.Rate(), 75e6, 0.01) {
			t.Fatalf("per-disk rate = %v, want 75e6", f.Rate())
		}
	}
	if !approx(total, 300e6, 0.001) {
		t.Fatalf("total = %v, want root-capped 300e6", total)
	}
}

func TestCommandRateCapSmallTransfers(t *testing.T) {
	// 12 disks doing 4KB sequential reads: per-disk standalone ~5380 IO/s
	// (22MB/s); the root command resource caps the aggregate at ~43.5k
	// IO/s, so 12 disks get no more than ~8 disks' worth — Figure 5's
	// small-transfer saturation.
	_, fs := newFS(t)
	fs.SetResource("root/up", RootPortBytesPerSec)
	fs.SetResource("cmd", RootPortCmdsPerSec)
	const xfer = 4096.0
	perDiskBytes := 5380 * xfer // ~22 MB/s
	mk := func(n int) float64 {
		s2, fs2 := newFS(t)
		_ = s2
		fs2.SetResource("root/up", RootPortBytesPerSec)
		fs2.SetResource("cmd", RootPortCmdsPerSec)
		var fl []*Flow
		for i := 0; i < n; i++ {
			f := &Flow{ID: "d" + string(rune('a'+i)), Demand: perDiskBytes,
				UnitsPerByte: map[string]float64{"root/up": 1, "cmd": 1 / xfer}}
			fs2.StartFlow(f, -1, nil)
			fl = append(fl, f)
		}
		tot := 0.0
		for _, f := range fl {
			tot += f.Rate()
		}
		return tot
	}
	t4 := mk(4)
	t8 := mk(8)
	t12 := mk(12)
	if !approx(t4, 4*perDiskBytes, 0.01) {
		t.Fatalf("4 disks = %.1f MB/s, want linear %.1f", t4/1e6, 4*perDiskBytes/1e6)
	}
	cmdCap := RootPortCmdsPerSec * xfer
	if !approx(t8, math.Min(8*perDiskBytes, cmdCap), 0.02) {
		t.Fatalf("8 disks = %.1f MB/s", t8/1e6)
	}
	if !approx(t12, cmdCap, 0.01) {
		t.Fatalf("12 disks = %.1f MB/s, want cmd-capped %.1f", t12/1e6, cmdCap/1e6)
	}
	if t12 > t8*1.05 {
		t.Fatalf("throughput kept scaling past saturation: 8=%v 12=%v", t8, t12)
	}
}

func TestFlowCompletionTimeUnderContention(t *testing.T) {
	// f1 runs alone for 1s at 300, then shares with f2 at 150 each.
	s, fs := newFS(t)
	fs.SetResource("root/up", 300e6)
	var f1Done, f2Done time.Duration
	fs.StartFlow(&Flow{ID: "f1", Demand: 400e6, UnitsPerByte: map[string]float64{"root/up": 1}},
		450e6, func() { f1Done = s.Now() })
	s.After(time.Second, func() {
		fs.StartFlow(&Flow{ID: "f2", Demand: 400e6, UnitsPerByte: map[string]float64{"root/up": 1}},
			300e6, func() { f2Done = s.Now() })
	})
	s.Run()
	// f1: 300MB in first second, remaining 150 at 150MB/s => done at 2s.
	if !approx(f1Done.Seconds(), 2.0, 0.01) {
		t.Fatalf("f1 done at %v, want 2s", f1Done)
	}
	// f2: 150MB while sharing (1s), then 150MB alone at 300 (0.5s) => 2.5s.
	if !approx(f2Done.Seconds(), 2.5, 0.01) {
		t.Fatalf("f2 done at %v, want 2.5s", f2Done)
	}
}

func TestStopFlowReleasesBandwidth(t *testing.T) {
	s, fs := newFS(t)
	fs.SetResource("root/up", 300e6)
	f1 := &Flow{ID: "f1", Demand: 400e6, UnitsPerByte: map[string]float64{"root/up": 1}}
	f2 := &Flow{ID: "f2", Demand: 400e6, UnitsPerByte: map[string]float64{"root/up": 1}}
	fs.StartFlow(f1, -1, nil)
	fs.StartFlow(f2, -1, nil)
	if !approx(f1.Rate(), 150e6, 0.001) {
		t.Fatalf("f1 rate = %v", f1.Rate())
	}
	fs.StopFlow("f2")
	if !approx(f1.Rate(), 300e6, 0.001) {
		t.Fatalf("f1 rate after stop = %v, want full 300e6", f1.Rate())
	}
	fs.StopFlow("ghost") // no-op
	_ = s
	if fs.Flows() != 1 {
		t.Fatalf("flows = %d", fs.Flows())
	}
}

func TestMovedAccounting(t *testing.T) {
	s, fs := newFS(t)
	fs.SetResource("root/up", 100e6)
	f := &Flow{ID: "f", Demand: 100e6, UnitsPerByte: map[string]float64{"root/up": 1}}
	fs.StartFlow(f, -1, nil)
	s.RunFor(2 * time.Second)
	fs.StopFlow("f")
	if !approx(f.Moved(), 200e6, 0.001) {
		t.Fatalf("moved = %v, want 200e6", f.Moved())
	}
}

func TestFlowValidation(t *testing.T) {
	_, fs := newFS(t)
	fs.SetResource("r", 100)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero demand", func() {
		fs.StartFlow(&Flow{ID: "z", Demand: 0, UnitsPerByte: map[string]float64{"r": 1}}, -1, nil)
	})
	mustPanic("unknown resource", func() {
		fs.StartFlow(&Flow{ID: "u", Demand: 1, UnitsPerByte: map[string]float64{"nope": 1}}, -1, nil)
	})
	fs.StartFlow(&Flow{ID: "a", Demand: 1, UnitsPerByte: map[string]float64{"r": 1}}, -1, nil)
	mustPanic("duplicate id", func() {
		fs.StartFlow(&Flow{ID: "a", Demand: 1, UnitsPerByte: map[string]float64{"r": 1}}, -1, nil)
	})
	mustPanic("bad capacity", func() { fs.SetResource("bad", 0) })
}
