package usb

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ustore/internal/simtime"
)

// Max-min fairness invariants, checked against random topologies and
// demand sets:
//
//  1. Feasibility: no flow exceeds its demand; no resource exceeds its
//     capacity (within numerical tolerance).
//  2. Work conservation / Pareto efficiency: every flow is either at its
//     demand or crosses at least one saturated resource.
//  3. Max-min: a flow below its demand never receives less than another
//     flow sharing a saturated resource with it — unless that other flow
//     is itself demand-capped below the first flow's rate.
func TestPropertyMaxMinInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := simtime.NewScheduler(seed)
		fs := NewFlowSim(
			func() time.Duration { return s.Now() },
			func(d time.Duration, fn func()) func() { ev := s.After(d, fn); return ev.Cancel })

		nRes := 1 + rng.Intn(5)
		resIDs := make([]string, nRes)
		caps := make(map[string]float64, nRes)
		for i := range resIDs {
			id := string(rune('A' + i))
			resIDs[i] = id
			caps[id] = 50 + rng.Float64()*400
			fs.SetResource(id, caps[id])
		}
		nFlows := 1 + rng.Intn(8)
		flows := make([]*Flow, nFlows)
		for i := range flows {
			units := map[string]float64{}
			// Each flow crosses a random nonempty subset of resources.
			for _, id := range resIDs {
				if rng.Intn(2) == 0 {
					units[id] = 1
				}
			}
			if len(units) == 0 {
				units[resIDs[rng.Intn(nRes)]] = 1
			}
			flows[i] = &Flow{
				ID:           string(rune('a' + i)),
				Demand:       10 + rng.Float64()*300,
				UnitsPerByte: units,
			}
			fs.StartFlow(flows[i], -1, nil)
		}

		const eps = 1e-6
		// 1. Feasibility.
		usage := map[string]float64{}
		for _, f := range flows {
			if f.Rate() > f.Demand*(1+eps) {
				return false
			}
			if f.Rate() < 0 {
				return false
			}
			for id, u := range f.UnitsPerByte {
				usage[id] += f.Rate() * u
			}
		}
		saturated := map[string]bool{}
		for id, used := range usage {
			if used > caps[id]*(1+1e-4) {
				return false
			}
			if used >= caps[id]*(1-1e-4) {
				saturated[id] = true
			}
		}
		// 2. Pareto: below-demand flows must cross a saturated resource.
		for _, f := range flows {
			if f.Rate() < f.Demand*(1-1e-4) {
				crossesSaturated := false
				for id := range f.UnitsPerByte {
					if saturated[id] {
						crossesSaturated = true
					}
				}
				if !crossesSaturated {
					return false
				}
			}
		}
		// 3. Max-min comparison on shared saturated resources.
		for _, f := range flows {
			if f.Rate() >= f.Demand*(1-1e-4) {
				continue // demand-capped flows can be arbitrarily small
			}
			for _, g := range flows {
				if f == g {
					continue
				}
				shared := false
				for id := range f.UnitsPerByte {
					if saturated[id] {
						if _, ok := g.UnitsPerByte[id]; ok {
							shared = true
						}
					}
				}
				if !shared {
					continue
				}
				// g may exceed f only if g is capped by its own demand at
				// a rate f cannot reach, or g's bottleneck is elsewhere
				// and less contended. The defining max-min property: you
				// cannot raise f without lowering some g with g.rate <=
				// f.rate. We check the weaker pairwise form: if g shares
				// f's saturated bottleneck and g.rate > f.rate, then g
				// must be... equal-share violated.
				if g.Rate() > f.Rate()*(1+1e-3) && g.Rate() < g.Demand*(1-1e-4) {
					// Both are bottlenecked flows sharing a saturated
					// resource yet unequal: check whether g's rate is
					// justified by a different bottleneck — in single-
					// unit-per-byte topologies it cannot be if they share
					// f's bottleneck resource AND that resource is g's
					// bottleneck too. Conservatively require equality
					// only when their resource sets are identical.
					same := len(f.UnitsPerByte) == len(g.UnitsPerByte)
					if same {
						for id := range f.UnitsPerByte {
							if _, ok := g.UnitsPerByte[id]; !ok {
								same = false
							}
						}
					}
					if same {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: bounded flows conserve bytes — a flow started with N bytes
// moves exactly N (within tolerance) by the time its completion fires,
// regardless of how many rebalances happen mid-flight.
func TestPropertyFlowByteConservation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := simtime.NewScheduler(seed)
		fs := NewFlowSim(
			func() time.Duration { return s.Now() },
			func(d time.Duration, fn func()) func() { ev := s.After(d, fn); return ev.Cancel })
		fs.SetResource("R", 100+rng.Float64()*200)
		n := 1 + rng.Intn(6)
		type rec struct {
			fl    *Flow
			total float64
			done  bool
		}
		recs := make([]*rec, n)
		for i := range recs {
			r := &rec{total: 1000 + rng.Float64()*1e6}
			r.fl = &Flow{
				ID:           string(rune('a' + i)),
				Demand:       20 + rng.Float64()*300,
				UnitsPerByte: map[string]float64{"R": 1},
			}
			recs[i] = r
			// Stagger starts to force rebalances mid-flight.
			delay := time.Duration(rng.Int63n(int64(time.Second)))
			s.After(delay, func() {
				fs.StartFlow(r.fl, r.total, func() { r.done = true })
			})
		}
		s.Run()
		for _, r := range recs {
			if !r.done {
				return false
			}
			if diff := r.fl.Moved() - r.total; diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
