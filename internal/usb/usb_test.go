package usb

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func newHC(t *testing.T, limit int) (*simtime.Scheduler, *HostController) {
	t.Helper()
	s := simtime.NewScheduler(1)
	hc := NewHostController("h1", 4, limit,
		func() time.Duration { return s.Now() },
		func(d time.Duration, fn func()) { s.After(d, fn) })
	return s, hc
}

func TestAttachEnumerates(t *testing.T) {
	s, hc := newHC(t, 0)
	var enumed []string
	hc.OnEnumerated = func(d *Device) { enumed = append(enumed, d.ID) }
	dev := NewStorage("disk0")
	if err := hc.Attach(hc.Root(), 1, dev); err != nil {
		t.Fatal(err)
	}
	if dev.Enumerated {
		t.Fatal("enumerated before delay")
	}
	s.Run()
	if !dev.Enumerated || len(enumed) != 1 || enumed[0] != "disk0" {
		t.Fatalf("enumeration failed: %v", enumed)
	}
	if s.Now() != EnumDetectDelay+EnumPerDevice {
		t.Fatalf("enumerated at %v, want %v", s.Now(), EnumDetectDelay+EnumPerDevice)
	}
}

func TestSerializedEnumeration(t *testing.T) {
	s, hc := newHC(t, 0)
	var times []time.Duration
	hc.OnEnumerated = func(d *Device) { times = append(times, s.Now()) }
	for i := 1; i <= 4; i++ {
		if err := hc.Attach(hc.Root(), i, NewStorage("d"+string(rune('0'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if len(times) != 4 {
		t.Fatalf("enumerated %d devices", len(times))
	}
	for i := 1; i < 4; i++ {
		if times[i]-times[i-1] != EnumPerDevice {
			t.Fatalf("enumeration gaps not serialized: %v", times)
		}
	}
	// 4 simultaneously attached devices take detect + 4*perDevice total,
	// the growth behaviour behind Figure 6's first component.
	want := EnumDetectDelay + 4*EnumPerDevice
	if times[3] != want {
		t.Fatalf("last enumeration at %v, want %v", times[3], want)
	}
}

func TestAttachSubtreeEnumeratesParentFirst(t *testing.T) {
	s, hc := newHC(t, 0)
	var order []string
	hc.OnEnumerated = func(d *Device) { order = append(order, d.ID) }
	hub := NewHub("hub1", 4)
	d1 := NewStorage("d1")
	d2 := NewStorage("d2")
	hub.Children[1] = d1
	d1.parent = hub
	d1.port = 1
	hub.Children[2] = d2
	d2.parent = hub
	d2.port = 2
	if err := hc.Attach(hc.Root(), 1, hub); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(order) != 3 || order[0] != "hub1" {
		t.Fatalf("order = %v, want hub first", order)
	}
}

func TestDeviceLimitQuirk(t *testing.T) {
	_, hc := newHC(t, 0) // default Intel limit 14
	for i := 1; i <= 4; i++ {
		hub := NewHub("hub"+string(rune('0'+i)), 4)
		if err := hc.Attach(hc.Root(), i, hub); err != nil {
			t.Fatal(err)
		}
	}
	// 4 hubs attached; room for 10 more devices.
	attached := 0
	var lastErr error
	hubIdx := 0
	hubs := []*Device{}
	hc.Root().Walk(func(d *Device) {
		if d.Class == ClassHub && d != hc.Root() {
			hubs = append(hubs, d)
		}
	})
	for i := 0; i < 16; i++ {
		hub := hubs[hubIdx%len(hubs)]
		port := (i/len(hubs))%hub.Ports + 1
		err := hc.Attach(hub, port, NewStorage("disk"+string(rune('a'+i))))
		if err != nil {
			lastErr = err
			break
		}
		attached++
		hubIdx++
	}
	if attached != 10 {
		t.Fatalf("attached %d storage devices, want 10 (14-device quirk)", attached)
	}
	if !errors.Is(lastErr, ErrTreeFull) {
		t.Fatalf("err = %v, want ErrTreeFull", lastErr)
	}
}

func TestTierLimit(t *testing.T) {
	_, hc := newHC(t, 127)
	parent := hc.Root() // tier 1
	var err error
	for i := 0; i < 5; i++ {
		hub := NewHub("h"+string(rune('0'+i)), 4)
		err = hc.Attach(parent, 1, hub)
		if err != nil {
			break
		}
		parent = hub
	}
	// Root=1, so hubs land at tiers 2..5; the 5th hub would be tier 6.
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep after 4 cascaded hubs", err)
	}
}

func TestPortValidation(t *testing.T) {
	_, hc := newHC(t, 0)
	if err := hc.Attach(hc.Root(), 99, NewStorage("d")); !errors.Is(err, ErrNoSuchPort) {
		t.Fatalf("err = %v", err)
	}
	if err := hc.Attach(hc.Root(), 1, NewStorage("a")); err != nil {
		t.Fatal(err)
	}
	if err := hc.Attach(hc.Root(), 1, NewStorage("b")); !errors.Is(err, ErrPortOccupied) {
		t.Fatalf("err = %v", err)
	}
	d := NewStorage("loose")
	if err := hc.Detach(d); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("err = %v", err)
	}
	stor := NewStorage("s")
	if err := hc.Attach(stor, 1, NewStorage("x")); err == nil {
		t.Fatal("attach to non-hub succeeded")
	}
}

func TestDetachFiresCallbacksAndCancelsEnumeration(t *testing.T) {
	s, hc := newHC(t, 0)
	var enumed, detached []string
	hc.OnEnumerated = func(d *Device) { enumed = append(enumed, d.ID) }
	hc.OnDetached = func(d *Device) { detached = append(detached, d.ID) }
	dev := NewStorage("d0")
	if err := hc.Attach(hc.Root(), 1, dev); err != nil {
		t.Fatal(err)
	}
	// Detach before enumeration completes.
	s.After(100*time.Millisecond, func() {
		if err := hc.Detach(dev); err != nil {
			t.Errorf("detach: %v", err)
		}
	})
	s.Run()
	if len(enumed) != 0 {
		t.Fatalf("detached device still enumerated: %v", enumed)
	}
	if len(detached) != 1 || detached[0] != "d0" {
		t.Fatalf("detached = %v", detached)
	}
}

func TestTreeSnapshotOnlyShowsEnumerated(t *testing.T) {
	s, hc := newHC(t, 0)
	hub := NewHub("hub1", 4)
	if err := hc.Attach(hc.Root(), 1, hub); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := hc.Attach(hub, 1, NewStorage("d1")); err != nil {
		t.Fatal(err)
	}
	// Before the enumeration delay the storage must not appear.
	tr := hc.Tree()
	if len(tr) != 1 || tr[0].ID != "hub1" {
		t.Fatalf("tree = %+v, want only hub1", tr)
	}
	s.Run()
	tr = hc.Tree()
	if len(tr) != 2 {
		t.Fatalf("tree = %+v", tr)
	}
	if tr[1].ID != "d1" || tr[1].ParentID != "hub1" || tr[1].Tier != 3 {
		t.Fatalf("storage entry = %+v", tr[1])
	}
	es := hc.EnumeratedStorage()
	if len(es) != 1 || es[0] != "d1" {
		t.Fatalf("EnumeratedStorage = %v", es)
	}
}

func TestReattachToOtherHostEnumeratesThere(t *testing.T) {
	s := simtime.NewScheduler(1)
	clock := func() time.Duration { return s.Now() }
	sched := func(d time.Duration, fn func()) { s.After(d, fn) }
	h1 := NewHostController("h1", 4, 0, clock, sched)
	h2 := NewHostController("h2", 4, 0, clock, sched)
	dev := NewStorage("d0")
	if err := h1.Attach(h1.Root(), 1, dev); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !dev.Enumerated {
		t.Fatal("not enumerated on h1")
	}
	// Switch: detach from h1, attach to h2 (what a fabric switch turn does).
	if err := h1.Detach(dev); err != nil {
		t.Fatal(err)
	}
	if dev.Enumerated {
		t.Fatal("still enumerated after detach")
	}
	if err := h2.Attach(h2.Root(), 2, dev); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !dev.Enumerated || len(h2.EnumeratedStorage()) != 1 || len(h1.EnumeratedStorage()) != 0 {
		t.Fatal("switch did not move the device to h2's tree")
	}
}
