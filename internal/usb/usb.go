// Package usb models the USB 3.0 bus behaviour UStore's interconnect fabric
// is built from: tiered device trees per root port, enumeration timing on
// hot-plug, per-controller device limits, and the bandwidth behaviour of
// SuperSpeed links.
//
// Two aspects matter for reproducing the paper:
//
//   - Topology/enumeration: when the fabric switches a disk between hosts the
//     receiving host's USB driver must enumerate it. Enumeration is serialized
//     per host controller, which is why Figure 6's "recognized" delay grows
//     with the number of disks switched at once. The Intel root-hub driver
//     quirk (fewer than 15 devices per controller, §V-B) is modelled too.
//
//   - Bandwidth: SuperSpeed is 5 Gb/s full duplex per link; after 8b/10b and
//     protocol overhead a single port sustains 300–400 MB/s per direction.
//     Package usb provides a max-min fair fluid-flow model (flow.go) over the
//     tree links, which Figure 5's multi-disk saturation curves emerge from.
package usb

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ustore/internal/obs"
)

// Bus-level constants from the USB 3.0 specification and the paper's
// measurements (§II-B, §V-B, §VII-A).
const (
	// MaxTiers is the maximum depth of a USB tree (root counts as tier 1).
	MaxTiers = 5
	// MaxDevicesPerTree is the USB addressing limit per tree, hubs included.
	MaxDevicesPerTree = 127
	// IntelRootHubDeviceLimit reproduces the Intel xHCI driver quirk the
	// prototype hit: fewer than 15 devices are recognized per controller.
	IntelRootHubDeviceLimit = 14

	// LinkBytesPerSec is the usable per-direction throughput of one
	// SuperSpeed link after encoding and protocol overhead (~400 MB/s).
	LinkBytesPerSec = 400e6
	// RootPortBytesPerSec is the usable per-direction throughput at a host
	// controller port; the paper measured ~300 MB/s.
	RootPortBytesPerSec = 300e6
	// RootPortDuplexBytesPerSec caps the two directions' sum: full duplex
	// is not perfectly independent (ACK and flow-control traffic crosses
	// directions), so a saturated port sums to ~540 MB/s, not 600
	// (§VII-A's measured duplex total).
	RootPortDuplexBytesPerSec = 540e6
	// RootPortCmdsPerSec is the host controller's aggregate small-command
	// dispatch rate. Eight disks at ~5.4k sequential 4KB IO/s saturate the
	// tree in the paper's Figure 5, giving ~43.5k cmds/s.
	RootPortCmdsPerSec = 43500

	// HighSpeedBytesPerSec is the usable throughput of a link that lost
	// SuperSpeed training and renegotiated down to USB 2.0 HighSpeed
	// (480 Mb/s wire, ~35 MB/s after protocol overhead) — the gray-failure
	// mode cheap cables and marginal hub silicon exhibit in deployment.
	HighSpeedBytesPerSec = 35e6
)

// LinkSpeed is the negotiated signalling rate of a device's upstream link.
type LinkSpeed int

const (
	// LinkSuper is a healthy USB 3.0 SuperSpeed link (the default).
	LinkSuper LinkSpeed = iota
	// LinkHigh is a link that fell back to USB 2.0 HighSpeed after failed
	// SuperSpeed training.
	LinkHigh
)

// String returns the speed name as the kernel's usb core logs it.
func (s LinkSpeed) String() string {
	if s == LinkHigh {
		return "high-speed"
	}
	return "super-speed"
}

// BytesPerSec returns the usable per-direction throughput at this speed.
func (s LinkSpeed) BytesPerSec() float64 {
	if s == LinkHigh {
		return HighSpeedBytesPerSec
	}
	return LinkBytesPerSec
}

// Enumeration timing. Hot-plugged devices are detected after a debounce and
// then enumerated serially per controller.
const (
	// EnumDetectDelay is link training + debounce before enumeration begins.
	EnumDetectDelay = 600 * time.Millisecond
	// EnumPerDevice is the serial per-device enumeration cost (descriptor
	// fetches, address assignment, driver bind).
	EnumPerDevice = 350 * time.Millisecond
)

// DeviceClass distinguishes hubs from leaf devices (disk bridges).
type DeviceClass int

const (
	// ClassHub is an internal tree node with downstream ports.
	ClassHub DeviceClass = iota
	// ClassStorage is a SATA-to-USB bridge with a disk behind it.
	ClassStorage
)

// String returns the class name as lsusb would show it.
func (c DeviceClass) String() string {
	if c == ClassHub {
		return "hub"
	}
	return "storage"
}

// Device is a node in a host's USB tree.
type Device struct {
	ID    string
	Class DeviceClass
	// Ports is the number of downstream ports (hubs only).
	Ports int
	// Children maps downstream port number -> attached device.
	Children map[int]*Device
	// Enumerated is false between physical attach and driver enumeration.
	Enumerated bool
	// Speed is the negotiated upstream link speed (LinkSuper unless a
	// downgrade fault renegotiated it).
	Speed  LinkSpeed
	parent *Device
	port   int
}

// NewHub returns an unattached hub device with the given fan-in.
func NewHub(id string, ports int) *Device {
	return &Device{ID: id, Class: ClassHub, Ports: ports, Children: make(map[int]*Device)}
}

// NewStorage returns an unattached storage (bridge+disk) device.
func NewStorage(id string) *Device {
	return &Device{ID: id, Class: ClassStorage, Children: make(map[int]*Device)}
}

// Tier returns the device's tier (root hub = 1).
func (d *Device) Tier() int {
	t := 1
	for p := d.parent; p != nil; p = p.parent {
		t++
	}
	return t
}

// Walk visits d and every descendant in deterministic (port-sorted) order.
func (d *Device) Walk(fn func(*Device)) {
	fn(d)
	ports := make([]int, 0, len(d.Children))
	for p := range d.Children {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		d.Children[p].Walk(fn)
	}
}

// Errors returned by tree mutations.
var (
	// ErrPortOccupied is returned when attaching to a port already in use.
	ErrPortOccupied = errors.New("usb: port occupied")
	// ErrNoSuchPort is returned for a port outside the hub's range.
	ErrNoSuchPort = errors.New("usb: no such port")
	// ErrTooDeep is returned when an attach would exceed MaxTiers.
	ErrTooDeep = errors.New("usb: tree exceeds 5 tiers")
	// ErrTreeFull is returned when an attach would exceed the device limit.
	ErrTreeFull = errors.New("usb: tree device limit exceeded")
	// ErrNotAttached is returned when detaching a device with no parent.
	ErrNotAttached = errors.New("usb: device not attached")
)

// HostController is one host's USB 3.0 root controller: a root hub, a device
// limit, and a serialized enumeration queue.
type HostController struct {
	host  string
	root  *Device
	limit int

	clock        func() time.Duration
	schedule     func(d time.Duration, fn func())
	enumBusyTill time.Duration

	// OnEnumerated fires when a device completes enumeration on this host.
	OnEnumerated func(dev *Device)
	// OnDetached fires when a device is surprise-removed from this host.
	OnDetached func(dev *Device)

	// Observability handles (nil-safe; SetRecorder fills them in).
	rec        *obs.Recorder
	mEnum      *obs.Histogram
	cAttach    *obs.Counter
	cDetach    *obs.Counter
	cEnum      *obs.Counter
	cFlap      *obs.Counter
	cDowngrade *obs.Counter

	flaps      int
	downgrades int
}

// SetRecorder points the controller's instrumentation at a run Recorder.
// Hot-plug attach/detach become trace instants, each device's wait from
// physical attach to driver enumeration lands in the
// usb_enumeration_seconds histogram, and the serialized enumeration of
// each device is a span on the host's track.
func (hc *HostController) SetRecorder(rec *obs.Recorder) {
	hc.rec = rec
	hc.mEnum = rec.Histogram("usb", "enumeration_seconds")
	hc.cAttach = rec.Counter("usb", "hotplug_attach_total")
	hc.cDetach = rec.Counter("usb", "hotplug_detach_total")
	hc.cEnum = rec.Counter("usb", "enumerations_total")
	hc.cFlap = rec.Counter("usb", "link_flaps_total")
	hc.cDowngrade = rec.Counter("usb", "link_downgrades_total")
}

// NewHostController creates a controller for host with the given root port
// count. clock and schedule plug it into the simulation scheduler without a
// package dependency cycle.
func NewHostController(host string, rootPorts int, limit int, clock func() time.Duration, schedule func(time.Duration, func())) *HostController {
	if limit <= 0 {
		limit = IntelRootHubDeviceLimit
	}
	return &HostController{
		host:     host,
		root:     NewHub("root:"+host, rootPorts),
		limit:    limit,
		clock:    clock,
		schedule: schedule,
	}
}

// Host returns the owning host name.
func (hc *HostController) Host() string { return hc.host }

// Root returns the root hub device.
func (hc *HostController) Root() *Device { return hc.root }

// DeviceCount returns the number of attached devices (excluding the root
// hub), whether enumerated yet or not.
func (hc *HostController) DeviceCount() int {
	n := 0
	hc.root.Walk(func(d *Device) { n++ })
	return n - 1
}

// Attach plugs dev (and any subtree below it) into the given port of parent.
// Enumeration of the subtree is scheduled: devices become visible after the
// detect delay plus their position in the controller's serial enumeration
// queue. Attach fails if the controller device limit, tier limit, or port
// constraints are violated — reproducing the prototype's ">15 devices not
// recognized" behaviour as a hard error the caller can observe.
func (hc *HostController) Attach(parent *Device, port int, dev *Device) error {
	if parent.Class != ClassHub {
		return fmt.Errorf("usb: attach to non-hub %s", parent.ID)
	}
	if port < 1 || port > parent.Ports {
		return fmt.Errorf("%w: %s port %d of %d", ErrNoSuchPort, parent.ID, port, parent.Ports)
	}
	if _, busy := parent.Children[port]; busy {
		return fmt.Errorf("%w: %s port %d", ErrPortOccupied, parent.ID, port)
	}
	subtree := 0
	maxDepth := 0
	dev.Walk(func(d *Device) {
		subtree++
		depth := 0
		for p := d; p != dev; p = p.parent {
			depth++
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	})
	if hc.DeviceCount()+subtree > hc.limit {
		return fmt.Errorf("%w: host %s limit %d", ErrTreeFull, hc.host, hc.limit)
	}
	if hc.DeviceCount()+subtree > MaxDevicesPerTree {
		return fmt.Errorf("%w: USB addressing limit %d", ErrTreeFull, MaxDevicesPerTree)
	}
	if parent.Tier()+1+maxDepth > MaxTiers {
		return fmt.Errorf("%w: would reach tier %d", ErrTooDeep, parent.Tier()+1+maxDepth)
	}
	parent.Children[port] = dev
	dev.parent = parent
	dev.port = port
	attachedAt := hc.clock()
	cause := hc.rec.Instant("usb", "hotplug-attach", hc.host,
		obs.L("device", dev.ID), obs.L("class", dev.Class.String()))
	hc.cAttach.Inc()
	// Schedule serialized enumeration of the subtree, breadth-first-ish via
	// Walk order (parents before children, as real enumeration requires).
	ready := attachedAt + EnumDetectDelay
	if hc.enumBusyTill > ready {
		ready = hc.enumBusyTill
	}
	dev.Walk(func(d *Device) {
		// The span covers this device's serial slot in the enumeration
		// queue; the histogram covers the full attach-to-visible wait.
		span := hc.rec.Begin("usb", "enumerate", hc.host, obs.L("device", d.ID))
		ready += EnumPerDevice
		at := ready
		hc.schedule(at-hc.clock(), func() {
			// The device may have been detached before enumeration
			// completed (rapid re-switching).
			if !hc.contains(d) {
				span.End(obs.L("aborted", "detached"))
				return
			}
			d.Enumerated = true
			span.End()
			hc.mEnum.ObserveDuration(hc.clock() - attachedAt)
			hc.cEnum.Inc()
			hc.rec.InstantCause("usb", "enumerated", hc.host, cause, obs.L("device", d.ID))
			if hc.OnEnumerated != nil {
				hc.OnEnumerated(d)
			}
		})
	})
	hc.enumBusyTill = ready
	return nil
}

// Detach surprise-removes dev (and its subtree) from this controller. The
// OnDetached callback fires immediately for every removed device, matching
// the immediate udev remove events a Linux host sees.
func (hc *HostController) Detach(dev *Device) error {
	if dev.parent == nil {
		return fmt.Errorf("%w: %s", ErrNotAttached, dev.ID)
	}
	delete(dev.parent.Children, dev.port)
	dev.parent = nil
	dev.port = 0
	dev.Walk(func(d *Device) {
		d.Enumerated = false
		hc.cDetach.Inc()
		hc.rec.Instant("usb", "hotplug-detach", hc.host, obs.L("device", d.ID))
		if hc.OnDetached != nil {
			hc.OnDetached(d)
		}
	})
	return nil
}

// SetLinkSpeed renegotiates dev's upstream link: a downgrade to LinkHigh
// models the USB3→USB2 fallback marginal cables exhibit, a later LinkSuper
// call models the link retraining cleanly. The device stays enumerated — the
// kernel keeps the device node across a speed change — but everything behind
// the link now moves at the new rate (callers propagate that to the disk's
// transport cap).
func (hc *HostController) SetLinkSpeed(dev *Device, s LinkSpeed) {
	if dev.Speed == s {
		return
	}
	dev.Speed = s
	if s == LinkHigh {
		hc.downgrades++
		hc.cDowngrade.Inc()
	}
	hc.rec.Instant("usb", "link-speed", hc.host,
		obs.L("device", dev.ID), obs.L("speed", s.String()))
}

// FlapDevice surprise-removes dev and schedules its re-attach to the same
// port after linkDownFor. The re-attach pays the normal detect + serialized
// enumeration cost, inflated by retryStorms failed enumeration attempts
// (each burning one EnumPerDevice slot of the controller's serial queue) —
// the retry-storm pattern flaky links produce in dmesg. If something else
// claimed the port while the link was down, the re-attach is abandoned and
// the device stays detached (exactly what a real fabric reconfiguration
// racing a flap would do).
func (hc *HostController) FlapDevice(dev *Device, linkDownFor time.Duration, retryStorms int) error {
	parent, port := dev.parent, dev.port
	if parent == nil {
		return fmt.Errorf("%w: %s", ErrNotAttached, dev.ID)
	}
	if err := hc.Detach(dev); err != nil {
		return err
	}
	hc.flaps++
	hc.cFlap.Inc()
	hc.rec.Instant("usb", "link-flap", hc.host,
		obs.L("device", dev.ID), obs.L("storms", fmt.Sprint(retryStorms)))
	hc.schedule(linkDownFor, func() {
		if _, busy := parent.Children[port]; busy {
			return
		}
		if !hc.contains(parent) && parent != hc.root {
			return // parent hub itself was removed while the link was down
		}
		if retryStorms > 0 {
			busyTill := hc.clock() + time.Duration(retryStorms)*EnumPerDevice
			if busyTill > hc.enumBusyTill {
				hc.enumBusyTill = busyTill
			}
		}
		_ = hc.Attach(parent, port, dev)
	})
	return nil
}

// Flaps and Downgrades return lifetime gray-event counts for this controller.
func (hc *HostController) Flaps() int      { return hc.flaps }
func (hc *HostController) Downgrades() int { return hc.downgrades }

func (hc *HostController) contains(dev *Device) bool {
	found := false
	hc.root.Walk(func(d *Device) {
		if d == dev {
			found = true
		}
	})
	return found
}

// TreeEntry is one line of an lsusb-style tree snapshot.
type TreeEntry struct {
	ID         string
	Class      DeviceClass
	Tier       int
	Port       int
	ParentID   string
	Enumerated bool
}

// Tree returns a deterministic snapshot of the controller's device tree —
// the "lsusb -t" view the EndPoint's USB Monitor reports to the Controller.
// Only enumerated devices appear (the OS cannot report what it has not
// enumerated). The root hub itself is omitted.
func (hc *HostController) Tree() []TreeEntry {
	var out []TreeEntry
	hc.root.Walk(func(d *Device) {
		if d == hc.root || !d.Enumerated {
			return
		}
		parentID := ""
		if d.parent != nil {
			parentID = d.parent.ID
		}
		out = append(out, TreeEntry{
			ID: d.ID, Class: d.Class, Tier: d.Tier(), Port: d.port,
			ParentID: parentID, Enumerated: d.Enumerated,
		})
	})
	return out
}

// EnumeratedStorage returns the IDs of enumerated storage devices, sorted —
// what the host can actually use as disks right now.
func (hc *HostController) EnumeratedStorage() []string {
	var out []string
	for _, e := range hc.Tree() {
		if e.Class == ClassStorage {
			out = append(out, e.ID)
		}
	}
	sort.Strings(out)
	return out
}
