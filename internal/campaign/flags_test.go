package campaign

import "flag"

var update = flag.Bool("update", false, "rewrite golden files")
