package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ustore/internal/spec"
)

const durabilityGrid = `name: durability-grid
mode: durability
seed: 9
durability:
  disks: 128
  disk_tb: 4
  years: 5
  repair_hours: 24
  trials: 2
grid:
  durability.scheme: [r2, r3]
  failure.model: [constant, empirical]
`

func parse(t *testing.T, doc string) *spec.File {
	t.Helper()
	f, err := spec.Parse([]byte(doc), "test.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCacheRerunSkipsEveryCell is the cache contract's core: an identical
// re-run executes nothing — every cell is a hit — and the merged report
// is byte-identical to the first run's.
func TestCacheRerunSkipsEveryCell(t *testing.T) {
	dir := t.TempDir()
	f := parse(t, durabilityGrid)
	first, err := Run(f, Options{CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Hits != 0 || first.Miss != 4 {
		t.Fatalf("first run: %d hits / %d misses, want 0/4", first.Hits, first.Miss)
	}
	second, err := Run(f, Options{CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if second.Hits != 4 || second.Miss != 0 {
		t.Fatalf("re-run: %d hits / %d misses, want 4/0 (zero executions)", second.Hits, second.Miss)
	}
	if first.Text() != second.Text() {
		t.Fatalf("cached report differs from computed report:\n%s\nvs\n%s", first.Text(), second.Text())
	}
}

// TestCacheEditInvalidatesExactlyAffectedCells: changing one grid axis
// value re-runs exactly the cells that see the new value; the rest stay
// cache hits.
func TestCacheEditInvalidatesExactlyAffectedCells(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(parse(t, durabilityGrid), Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(durabilityGrid, "[r2, r3]", "[r2, ec8+3]", 1)
	res, err := Run(parse(t, edited), Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// r2 x {constant, empirical} stay cached; ec8+3 x {constant, empirical}
	// are new.
	if res.Hits != 2 || res.Miss != 2 {
		t.Fatalf("edited axis: %d hits / %d misses, want 2/2", res.Hits, res.Miss)
	}
	for _, c := range res.Cells {
		wantCached := strings.HasPrefix(c.ID, "scheme=r2")
		if c.Cached != wantCached {
			t.Errorf("cell %s: cached=%v, want %v", c.ID, c.Cached, wantCached)
		}
	}
	// And a seed edit (a non-grid field every cell inherits) invalidates
	// everything.
	reseeded := strings.Replace(durabilityGrid, "seed: 9", "seed: 10", 1)
	res, err = Run(parse(t, reseeded), Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Miss != 4 {
		t.Fatalf("seed edit: %d hits / %d misses, want 0/4", res.Hits, res.Miss)
	}
}

// TestCacheCorruptEntryIsAMiss: a truncated or garbage cache file means
// re-execution, never a poisoned report or an error.
func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	f := parse(t, durabilityGrid)
	if _, err := Run(f, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 4 {
		t.Fatalf("want 4 cache entries, got %d (%v)", len(entries), err)
	}
	if err := os.WriteFile(entries[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 3 || res.Miss != 1 {
		t.Fatalf("corrupt entry: %d hits / %d misses, want 3/1", res.Hits, res.Miss)
	}
}

// TestForceReexecutes: Force ignores hits but refreshes the entries.
func TestForceReexecutes(t *testing.T) {
	dir := t.TempDir()
	f := parse(t, durabilityGrid)
	if _, err := Run(f, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, Options{CacheDir: dir, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Miss != 4 {
		t.Fatalf("force: %d hits / %d misses, want 0/4", res.Hits, res.Miss)
	}
}

// TestParallelByteEquality extends the repo's workers-1-vs-N contract to
// the campaign runner: per-cell summaries, logs, and the merged report
// are byte-identical at any worker count, cache on or off.
func TestParallelByteEquality(t *testing.T) {
	doc := `name: par
mode: faults
seed: 4
days: 1
faults:
  pairs: 2
  blocks_per_space: 4
output:
  log: true
grid:
  seed: [4, 5]
  failure.model: [constant, empirical]
`
	f := parse(t, doc)
	seq, err := Run(f, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(f, Options{Workers: 4, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != 4 || len(par.Cells) != 4 {
		t.Fatalf("cell counts: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i], par.Cells[i]
		if a.Summary != b.Summary {
			t.Errorf("cell %d (%s): summaries diverge across worker counts", i, a.ID)
		}
		if strings.Join(a.Log, "\n") != strings.Join(b.Log, "\n") {
			t.Errorf("cell %d (%s): event logs diverge across worker counts", i, a.ID)
		}
	}
	if seq.Text() != par.Text() {
		t.Fatal("merged reports diverge across worker counts")
	}
}

// TestDurabilityCellPhysics pins the orderings that make the
// durability-vs-cost grid meaningful: more redundancy buys more nines,
// costs more per usable TB; the empirical model (infant mortality +
// batch shocks) fails more media than the constant plateau.
func TestDurabilityCellPhysics(t *testing.T) {
	run := func(doc string) *DurabilityResult {
		t.Helper()
		f := parse(t, doc)
		res, err := RunDurability(f.Spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := "mode: durability\nseed: 2\ndurability:\n  disks: 1024\n  trials: 4\n  scheme: %s\n"
	r1 := run(strings.Replace(base, "%s", "r1", 1))
	r3 := run(strings.Replace(base, "%s", "r3", 1))
	ec := run(strings.Replace(base, "%s", "ec8+3", 1))
	if r1.LossIncidents == 0 {
		t.Fatal("r1 (no redundancy) must lose data under ~3.6%/yr AFR")
	}
	if r3.Nines <= r1.Nines {
		t.Errorf("r3 nines %.1f should beat r1 nines %.1f", r3.Nines, r1.Nines)
	}
	if r3.CapExPerUsableTB <= r1.CapExPerUsableTB {
		t.Errorf("r3 $/TB %.0f should exceed r1 $/TB %.0f", r3.CapExPerUsableTB, r1.CapExPerUsableTB)
	}
	if ec.CapExPerUsableTB >= r3.CapExPerUsableTB {
		t.Errorf("ec8+3 $/TB %.0f should undercut r3 $/TB %.0f", ec.CapExPerUsableTB, r3.CapExPerUsableTB)
	}
	if ec.Overhead != 11.0/8 || r3.Overhead != 3 {
		t.Errorf("overheads wrong: ec=%.3f r3=%.3f", ec.Overhead, r3.Overhead)
	}

	emp := run("mode: durability\nseed: 2\nfailure:\n  model: empirical\ndurability:\n  disks: 1024\n  trials: 4\n  scheme: r1\n")
	if emp.DiskFailures <= r1.DiskFailures {
		t.Errorf("empirical model sampled %d failures, constant %d — bathtub + batches should fail more media",
			emp.DiskFailures, r1.DiskFailures)
	}
}

// TestFidelityCell runs one (cheap) fidelity check through the cell path.
func TestFidelityCell(t *testing.T) {
	f := parse(t, "mode: fidelity\nfidelity:\n  check: table1-ustore-capex\n")
	cells, err := f.Cells()
	if err != nil {
		t.Fatal(err)
	}
	r, err := ExecCell(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fidelity) != 1 || !r.Fidelity[0].Pass {
		t.Fatalf("fidelity cell: %+v", r.Fidelity)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("violations: %v", r.Violations)
	}
	if _, err := ExecCell(mustCell(t, "mode: fidelity\nfidelity:\n  check: no-such-check\n")); err == nil {
		t.Fatal("unknown check id must fail the cell")
	}
}

func mustCell(t *testing.T, doc string) spec.Cell {
	t.Helper()
	f, err := spec.Parse([]byte(doc), "cell.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := f.Cells()
	if err != nil || len(cells) != 1 {
		t.Fatalf("cells: %v", err)
	}
	return cells[0]
}

// TestReportGolden pins the merged report's exact bytes for a small
// durability campaign. This is the same artifact the campaign-smoke CI
// job diffs; regenerate with:
//
//	go test ./internal/campaign -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	f := parse(t, durabilityGrid)
	res, err := Run(f, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "durability_grid.report")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(res.Text()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if res.Text() != string(want) {
		t.Fatalf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", res.Text(), want)
	}
}
