package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"ustore/internal/cost"
	"ustore/internal/faults"
	"ustore/internal/spec"
)

// DurabilityResult is one durability-vs-cost grid cell: a disk population
// under the configured failure model, protected by the scheme, Monte
// Carlo'd over Trials independent fleets. Loss semantics follow the
// classic reliability sweep: a protection group loses data when the
// overlapping-failure count exceeds its tolerance before repair finishes,
// or when an uncorrectable read error strikes a rebuild running at the
// group's last surviving redundancy.
type DurabilityResult struct {
	Scheme   string  `json:"scheme"`
	Width    int     `json:"width"`    // disks per protection group
	Tolerate int     `json:"tolerate"` // overlapping failures survived
	Groups   int     `json:"groups"`
	Trials   int     `json:"trials"`
	Years    float64 `json:"years"`

	DiskFailures  int `json:"disk_failures"`  // raw media failures sampled
	LossIncidents int `json:"loss_incidents"` // overlap-exceeded events
	URELosses     int `json:"ure_losses"`     // last-redundancy rebuild URE hits

	// AnnualLossRate is loss incidents per population-year; Nines is the
	// durability exponent -log10(P[any loss in a year]). When no trial
	// lost data, Nines is the resolution bound of the experiment (the
	// value a half-incident would produce) and NinesIsBound is set.
	AnnualLossRate float64 `json:"annual_loss_rate"`
	Nines          float64 `json:"nines"`
	NinesIsBound   bool    `json:"nines_is_bound"`

	// Cost side: usable capacity after protection overhead, and the
	// paper's UStore CapEx spread over it.
	RawTB            float64 `json:"raw_tb"`
	UsableTB         float64 `json:"usable_tb"`
	Overhead         float64 `json:"overhead"`
	CapExPerUsableTB float64 `json:"capex_per_usable_tb"`
}

// RunDurability executes one durability cell. Everything is derived from
// the spec: same spec, byte-identical result.
func RunDurability(s *spec.Spec) (*DurabilityResult, error) {
	d := s.Durability
	width, tol, err := spec.ParseScheme(d.Scheme)
	if err != nil {
		return nil, err
	}
	model := s.EmpiricalModel()
	if s.Failure.Model == "constant" {
		// The constant model is the flat exponential at the field AFR: the
		// same plateau, no infant mortality, no wear-out, no batch shocks.
		model = &faults.EmpiricalModel{UsefulAFR: model.UsefulAFR, UREBits: model.UREBits}
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	res := &DurabilityResult{
		Scheme: d.Scheme, Width: width, Tolerate: tol,
		Groups: d.Disks / width, Trials: d.Trials, Years: d.Years,
	}
	if res.Groups == 0 {
		return nil, fmt.Errorf("durability: %d disks cannot fill one %s group (width %d)", d.Disks, d.Scheme, width)
	}
	horizon := time.Duration(d.Years * float64(faults.Year))
	repair := time.Duration(d.RepairHours * float64(time.Hour))

	// A rebuild at last redundancy reads width-tol surviving disks' worth
	// of sectors; one URE there is an unrecoverable sector.
	sectorsRead := float64(width-tol) * d.DiskTB * 1e12 / 4096
	pURE := 1.0
	if r := model.URESectorRate(); r > 0 {
		pURE = -math.Expm1(sectorsRead * math.Log1p(-r))
	} else {
		pURE = 0
	}

	for trial := 0; trial < d.Trials; trial++ {
		rng := rand.New(rand.NewSource(s.Seed + int64(trial)*0x9e3779b9))
		events := model.SampleFleet(rng, res.Groups*width, horizon, repair)
		res.DiskFailures += len(events)
		// Sweep the failures chronologically, tracking each group's open
		// outage windows [At, At+repair). RNG draws happen only inside the
		// sweep's deterministic event order.
		open := make([][]time.Duration, res.Groups) // repair-completion times
		for _, ev := range events {
			g := ev.Disk / width
			ends := open[g][:0]
			for _, e := range open[g] {
				if e > ev.At {
					ends = append(ends, e)
				}
			}
			concurrent := len(ends) // pre-existing overlapping outages
			ends = append(ends, ev.At+repair)
			open[g] = ends
			switch {
			case concurrent+1 > tol:
				res.LossIncidents++
			case concurrent+1 == tol && tol > 0:
				// Last redundancy: the rebuild must read every surviving
				// sector cleanly or lose the unreadable stripe.
				if pURE > 0 && rng.Float64() < pURE {
					res.URELosses++
					res.LossIncidents++
				}
			}
		}
	}

	trialYears := float64(d.Trials) * d.Years
	res.AnnualLossRate = float64(res.LossIncidents) / trialYears
	rate := res.AnnualLossRate
	if res.LossIncidents == 0 {
		rate = 0.5 / trialYears // experiment resolution, not an observation
		res.NinesIsBound = true
	}
	res.Nines = -math.Log10(-math.Expm1(-rate))

	res.RawTB = float64(d.Disks) * d.DiskTB
	overhead, err := spec.SchemeOverhead(d.Scheme)
	if err != nil {
		return nil, err
	}
	res.Overhead = overhead
	res.UsableTB = res.RawTB / overhead
	capex := cost.UStore().Evaluate(res.RawTB * 1e12).CapEx
	res.CapExPerUsableTB = float64(capex) / res.UsableTB
	return res, nil
}

// Text renders the cell's stamped summary block.
func (r *DurabilityResult) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "durability %s: %d groups x %d disks, tolerate %d, %.0fy x %d trials\n",
		r.Scheme, r.Groups, r.Width, r.Tolerate, r.Years, r.Trials)
	fmt.Fprintf(&b, "  failures %d media, %d loss incidents (%d via rebuild URE)\n",
		r.DiskFailures, r.LossIncidents, r.URELosses)
	nines := fmt.Sprintf("%.1f nines", r.Nines)
	if r.NinesIsBound {
		nines = fmt.Sprintf(">%.1f nines (no losses at trial resolution)", r.Nines)
	}
	fmt.Fprintf(&b, "  durability %s, annual loss rate %.4g/population-year\n", nines, r.AnnualLossRate)
	fmt.Fprintf(&b, "  capacity %.0fTB raw -> %.0fTB usable (%.2fx), $%.0f CapEx/usable TB\n",
		r.RawTB, r.UsableTB, r.Overhead, r.CapExPerUsableTB)
	return b.String()
}
