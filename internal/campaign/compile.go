// Package campaign sweeps declarative experiment specs (internal/spec)
// across the existing chaos, traffic, fleet, fidelity, and durability
// engines: a spec file's parameter grid expands into cells, each cell
// compiles into the engine's option struct, runs on the shared worker
// pool, and lands in a byte-deterministic stamped report. Cells are keyed
// by their content hash, so a campaign directory doubles as a result
// cache — re-running an unchanged spec executes nothing and reproduces
// the report byte for byte, while editing one grid axis re-runs exactly
// the affected cells.
package campaign

import (
	"time"

	"ustore/internal/chaos"
	"ustore/internal/spec"
)

// CompileChaos lowers a faults- or traffic-mode spec onto the chaos
// harness's option struct. The mapping is total: every spec field that
// reaches this mode has exactly one Options field, so two specs with
// equal hashes run identical simulations.
func CompileChaos(s *spec.Spec) chaos.Options {
	o := chaos.DefaultOptions(s.Seed, time.Duration(s.Days*float64(24*time.Hour)))
	o.HostCrashes = s.Faults.HostCrashes
	o.DiskFaults = s.Faults.Disks
	o.HubFaults = s.Faults.Hubs
	o.NetFaults = s.Faults.Net
	o.Corruptions = s.Faults.Corruptions
	o.GrayFaults = s.Faults.Gray
	o.Mitigation = s.Faults.Mitigation
	o.Pairs = s.Faults.Pairs
	o.BlocksPerSpace = s.Faults.BlocksPerSpace
	if s.Mode == "traffic" {
		o.Tenants = true
		o.Storm = s.Traffic.Storm
		o.Protect = s.Traffic.Protect
		o.StreamQuantiles = s.Traffic.StreamQuantiles
	}
	if s.Failure.Model == "empirical" {
		o.Empirical = s.EmpiricalModel()
		o.AgeYears = s.Failure.AgeYears
	}
	return o
}

// CompileFleet lowers a fleet-mode spec onto the fleet-scale control
// plane's option struct.
func CompileFleet(s *spec.Spec) chaos.FleetOptions {
	return chaos.FleetOptions{
		Seed:              s.Seed,
		Units:             s.Fleet.Units,
		Shards:            s.Fleet.Shards,
		Clients:           s.Fleet.Clients,
		Volumes:           s.Fleet.Volumes,
		UnitLoss:          s.Fleet.UnitLoss,
		EngineWorkers:     s.Fleet.EngineWorkers,
		ReplicaCrashes:    s.Fleet.Crashes,
		Partitions:        s.Fleet.Partitions,
		SlotMoves:         s.Fleet.SlotMoves,
		FaultWindow:       time.Duration(s.Fleet.FaultWindowSec * float64(time.Second)),
		InjectSkipRedrive: s.Fleet.SkipRedrive,
	}
}
