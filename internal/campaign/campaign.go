package campaign

import (
	"fmt"
	"math"
	"strings"

	"ustore/internal/bench"
	"ustore/internal/chaos"
	"ustore/internal/runner"
	"ustore/internal/spec"
)

// Options parameterizes a campaign run.
type Options struct {
	// CacheDir is the result cache. "" disables caching entirely.
	CacheDir string
	// Workers sizes the cell worker pool (runner.Workers semantics:
	// <= 0 means GOMAXPROCS). Reports are byte-identical at any width.
	Workers int
	// Force re-executes every cell even on a cache hit (the entries are
	// refreshed).
	Force bool
}

// CellResult is one executed (or cache-replayed) grid cell. The struct
// is exactly what the cache stores — Cached itself stays out of the
// serialized form and out of the report text, so a replayed campaign's
// report is byte-identical to the freshly computed one.
type CellResult struct {
	Index int    `json:"index"`
	ID    string `json:"id,omitempty"` // "scheme=r3,model=empirical"
	Hash  string `json:"hash"`
	Name  string `json:"name,omitempty"`
	Mode  string `json:"mode"`
	Seed  int64  `json:"seed"`

	Summary    string   `json:"summary"`
	Violations []string `json:"violations,omitempty"`
	Log        []string `json:"log,omitempty"`

	Durability *DurabilityResult `json:"durability,omitempty"`
	Fidelity   []FidelityResult  `json:"fidelity,omitempty"`

	Cached bool `json:"-"`
}

// FidelityResult is one paper-fidelity check outcome inside a
// fidelity-mode cell.
type FidelityResult struct {
	ID    string  `json:"id"`
	What  string  `json:"what"`
	Paper float64 `json:"paper"`
	Want  float64 `json:"want"`
	Got   float64 `json:"got"`
	Tol   float64 `json:"tol"`
	Pass  bool    `json:"pass"`
}

// Result is a finished campaign: every cell in grid order plus the cache
// traffic counts (which are observability only — they never reach the
// report text).
type Result struct {
	Name  string
	Spec  string // spec file path, for the report header
	Cells []CellResult
	Hits  int
	Miss  int
}

// Run expands the spec file's grid and executes every cell on the worker
// pool, consulting the cache first. Cell order in the result is grid
// order regardless of completion order.
func Run(f *spec.File, o Options) (*Result, error) {
	cells, err := f.Cells()
	if err != nil {
		return nil, err
	}
	out, err := runner.MapErr(len(cells), o.Workers, func(i int) (CellResult, error) {
		c := cells[i]
		if o.CacheDir != "" && !o.Force {
			if r, ok := loadCache(o.CacheDir, c.Hash); ok {
				r.Cached = true
				r.Index = c.Index // position is the grid's, not the entry's
				r.ID = c.ID
				return *r, nil
			}
		}
		r, err := ExecCell(c)
		if err != nil {
			return CellResult{}, fmt.Errorf("cell %d (%s): %w", c.Index, c.ID, err)
		}
		if o.CacheDir != "" {
			if err := storeCache(o.CacheDir, r); err != nil {
				return CellResult{}, err
			}
		}
		return *r, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Name: f.Spec.Name, Spec: f.Path, Cells: out}
	for _, c := range out {
		if c.Cached {
			res.Hits++
		} else {
			res.Miss++
		}
	}
	return res, nil
}

// ExecCell runs one cell against the engine its mode selects.
func ExecCell(c spec.Cell) (*CellResult, error) {
	s := c.Spec
	r := &CellResult{
		Index: c.Index, ID: c.ID, Hash: c.Hash,
		Name: s.Name, Mode: s.Mode, Seed: s.Seed,
	}
	switch s.Mode {
	case "faults", "traffic":
		rep, err := chaos.Run(CompileChaos(s))
		if err != nil {
			return nil, err
		}
		r.Summary = rep.SummaryText()
		r.Violations = rep.Violations
		if s.Output.Log {
			r.Log = rep.Log
		}
	case "fleet":
		rep, err := chaos.RunFleet(CompileFleet(s))
		if err != nil {
			return nil, err
		}
		r.Summary = rep.SummaryText()
		r.Violations = rep.Violations
		if s.Output.Log {
			r.Log = rep.Log
		}
	case "fidelity":
		results, err := runFidelity(s.Fidelity.Check)
		if err != nil {
			return nil, err
		}
		r.Fidelity = results
		r.Summary = fidelityText(results)
		for _, fr := range results {
			if !fr.Pass {
				r.Violations = append(r.Violations,
					fmt.Sprintf("fidelity %s: got %.4g, want %.4g ±%.0f%%", fr.ID, fr.Got, fr.Want, fr.Tol*100))
			}
		}
	case "durability":
		dr, err := RunDurability(s)
		if err != nil {
			return nil, err
		}
		r.Durability = dr
		r.Summary = dr.Text()
	default:
		return nil, fmt.Errorf("unknown mode %q", s.Mode)
	}
	return r, nil
}

// runFidelity measures the named paper-fidelity check, or the full suite
// when id is "".
func runFidelity(id string) ([]FidelityResult, error) {
	var out []FidelityResult
	for _, c := range bench.FidelityChecks() {
		if id != "" && c.ID != id {
			continue
		}
		got, err := c.Measure()
		if err != nil {
			return nil, fmt.Errorf("fidelity %s: %w", c.ID, err)
		}
		out = append(out, FidelityResult{
			ID: c.ID, What: c.What, Paper: c.Paper, Want: c.Want, Got: got, Tol: c.Tol,
			Pass: math.Abs(got-c.Want) <= c.Tol*math.Abs(c.Want),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fidelity check %q (see internal/bench.FidelityChecks)", id)
	}
	return out, nil
}

func fidelityText(results []FidelityResult) string {
	var b strings.Builder
	for _, r := range results {
		mark := "ok  "
		if !r.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%s %-26s %s: got %.4g, want %.4g ±%.0f%% (paper %.4g)\n",
			mark, r.ID, r.What, r.Got, r.Want, r.Tol*100, r.Paper)
	}
	return b.String()
}

// Violations counts invariant violations and failed checks across the
// campaign (a nonzero count is the CLI's exit-1 condition).
func (r *Result) Violations() int {
	n := 0
	for _, c := range r.Cells {
		n += len(c.Violations)
	}
	return n
}

// Text renders the campaign report. Byte-deterministic by construction:
// every line derives from cell results (which are themselves
// byte-deterministic per spec hash), never from wall clocks, cache
// traffic, worker counts, or completion order.
func (r *Result) Text() string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "campaign %s: %d cells (%s)\n", name, len(r.Cells), r.Spec)
	for _, c := range r.Cells {
		id := c.ID
		if id == "" {
			id = "(single cell)"
		}
		fmt.Fprintf(&b, "\n--- cell %d: %s [%s seed=%d spec=%s]\n", c.Index, id, c.Mode, c.Seed, c.Hash[:12])
		sum := strings.TrimRight(c.Summary, "\n")
		if sum != "" {
			for _, line := range strings.Split(sum, "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
		for _, v := range c.Violations {
			fmt.Fprintf(&b, "    VIOLATION: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "\n%d cells, %d violations\n", len(r.Cells), r.Violations())
	return b.String()
}
