package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The on-disk cache is one JSON file per cell, named by the cell's
// content hash (internal/spec.Hash — the sha256 of the decoded,
// defaulted spec). There is no index and no eviction: the hash IS the
// lookup, collisions don't exist at sha256 scale, and a stale entry is
// unreachable the moment any value feeding its cell changes.

func cachePath(dir, hash string) string {
	return filepath.Join(dir, hash+".json")
}

// loadCache returns the cached result for a cell hash, or ok=false on
// any miss — absent file, unreadable file, or undecodable content (a
// corrupt entry is a miss, never an error: the cell just re-runs and the
// store overwrites it).
func loadCache(dir, hash string) (*CellResult, bool) {
	data, err := os.ReadFile(cachePath(dir, hash))
	if err != nil {
		return nil, false
	}
	var r CellResult
	if err := json.Unmarshal(data, &r); err != nil || r.Hash != hash {
		return nil, false
	}
	return &r, true
}

// storeCache persists a cell result atomically: full write to a
// temp file in the same directory, then rename, so a crashed or
// concurrent campaign never leaves a half-written entry that would
// poison later runs.
func storeCache(dir string, r *CellResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+r.Hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), cachePath(dir, r.Hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: commit cache entry: %w", err)
	}
	return nil
}
