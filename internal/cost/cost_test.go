package cost

import (
	"math"
	"testing"
)

func withinPct(got, want Money, pct float64) bool {
	return math.Abs(float64(got)-float64(want)) <= pct/100*float64(want)
}

// TestTableIReproduction checks every Table I cell within 3% (the paper's
// own numbers carry rounding).
func TestTableIReproduction(t *testing.T) {
	want := map[string]struct{ capEx, attEx Money }{
		"DELL PowerVault MD3260i": {3_340_000, 1_525_000},
		"Sun StorageTek SL150":    {1_748_000, 0},
		"Pergamum":                {756_000, 415_000},
		"BACKBLAZE":               {598_000, 257_000},
		"UStore":                  {456_000, 115_000},
	}
	for _, rep := range TableI() {
		w, ok := want[rep.Solution]
		if !ok {
			t.Fatalf("unexpected solution %q", rep.Solution)
		}
		if !withinPct(rep.CapEx, w.capEx, 3) {
			t.Errorf("%s CapEx = %v, paper %v", rep.Solution, rep.CapEx, w.capEx)
		}
		if w.attEx > 0 && !withinPct(rep.AttEx, w.attEx, 3) {
			t.Errorf("%s AttEx = %v, paper %v", rep.Solution, rep.AttEx, w.attEx)
		}
	}
}

func TestHeadlineSavings(t *testing.T) {
	var ustore, backblaze Report
	for _, rep := range TableI() {
		switch rep.Solution {
		case "UStore":
			ustore = rep
		case "BACKBLAZE":
			backblaze = rep
		}
	}
	// "UStore costs 24% lower than BACKBLAZE ... Excluding the disk cost,
	// UStore is 55% cheaper."
	capSave := Savings(ustore.CapEx, backblaze.CapEx)
	if capSave < 0.20 || capSave > 0.28 {
		t.Errorf("CapEx saving vs Backblaze = %.0f%%, paper 24%%", capSave*100)
	}
	attSave := Savings(ustore.AttEx, backblaze.AttEx)
	if attSave < 0.50 || attSave > 0.60 {
		t.Errorf("AttEx saving vs Backblaze = %.0f%%, paper 55%%", attSave*100)
	}
}

func TestOrderingMatchesPaper(t *testing.T) {
	reports := TableI()
	// CapEx order: MD3260i > SL150 > Pergamum > Backblaze > UStore.
	for i := 1; i < len(reports); i++ {
		if reports[i].CapEx >= reports[i-1].CapEx {
			t.Fatalf("CapEx not strictly decreasing at %s (%v) vs %s (%v)",
				reports[i].Solution, reports[i].CapEx, reports[i-1].Solution, reports[i-1].CapEx)
		}
	}
}

func TestUStoreFabricCostIsTiny(t *testing.T) {
	u := UStore()
	var fabricCost Money
	for _, li := range u.PerUnit {
		if li.Name == "USB hubs" || li.Name == "USB 2:1 switches" || li.Name == "SATA-USB bridges" {
			fabricCost += li.Cost()
		}
	}
	// The whole point: the interconnect's silicon is a rounding error —
	// under $5 of attach cost per disk.
	perDisk := float64(fabricCost) / float64(u.MediaPerUnit)
	if perDisk > 5 {
		t.Fatalf("fabric silicon = $%.2f per disk, want < $5", perDisk)
	}
}

func TestUnitsRoundUp(t *testing.T) {
	u := UStore()
	if got := u.Units(TargetCapacityBytes); got != 53 {
		t.Fatalf("UStore units = %d, want 53 (ceil(3334/64))", got)
	}
	b := Backblaze()
	if got := b.Units(TargetCapacityBytes); got != 75 {
		t.Fatalf("Backblaze units = %d, want 75", got)
	}
}

func TestMoneyString(t *testing.T) {
	if got := Money(456_000).String(); got != "$456k" {
		t.Fatalf("String = %q", got)
	}
}

func TestAmortizedCostPerDisk(t *testing.T) {
	// Footnote 3: with equal disks, AttEx also ranks amortized per-disk
	// attach cost. UStore ~ $34/disk, Backblaze ~ $77, Pergamum ~ $123.
	reports := TableI()
	perDisk := map[string]float64{}
	for _, rep := range reports {
		if rep.Media == "SATA HD" {
			perDisk[rep.Solution] = float64(rep.AttEx) / float64(rep.MediaQty)
		}
	}
	if !(perDisk["UStore"] < perDisk["BACKBLAZE"] && perDisk["BACKBLAZE"] < perDisk["Pergamum"]) {
		t.Fatalf("per-disk attach order wrong: %v", perDisk)
	}
	if perDisk["UStore"] > 40 {
		t.Fatalf("UStore per-disk attach = $%.0f, want ~$34", perDisk["UStore"])
	}
}
