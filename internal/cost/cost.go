// Package cost reproduces the paper's CapEx comparison (§VI, Table I):
// the cost of 10 PB of raw storage under five solutions — Dell PowerVault
// MD3260i (near-line SAS), Sun StorageTek SL150 (LTO6 tape), Pergamum
// (ARM-per-disk tomes), BACKBLAZE storage pods, and UStore.
//
// Each solution is a bill-of-materials model: a unit that holds a fixed
// number of media, a per-unit attach cost ("AttEx" — everything except the
// media), and a per-medium price. UStore's attach cost is itself computed
// from the fabric's component counts (hubs, switches, bridges at <$1 BOM,
// doubled for retail markup) plus a Backblaze-derived enclosure.
package cost

import (
	"fmt"
	"math"

	"ustore/internal/fabric"
)

// TargetCapacityBytes is Table I's 10 PB (decimal petabytes).
const TargetCapacityBytes = 10e15

// Money is US dollars.
type Money float64

// String renders dollars with thousands precision like the paper
// ("$456k").
func (m Money) String() string {
	return fmt.Sprintf("$%.0fk", float64(m)/1000)
}

// LineItem is one row of a solution's per-unit bill of materials.
type LineItem struct {
	Name     string
	Qty      int
	UnitCost Money
}

// Cost returns the line's extended cost.
func (li LineItem) Cost() Money { return Money(float64(li.Qty) * float64(li.UnitCost)) }

// Solution models one storage system for the comparison.
type Solution struct {
	Name string
	// Media describes the storage medium.
	MediaName    string
	MediaBytes   float64
	MediaCost    Money
	MediaPerUnit int
	// PerUnit is the unit's attach bill of materials (everything but
	// media).
	PerUnit []LineItem
}

// UnitAttEx sums the per-unit attach cost.
func (s Solution) UnitAttEx() Money {
	var total Money
	for _, li := range s.PerUnit {
		total += li.Cost()
	}
	return total
}

// Units returns how many units cover the target capacity.
func (s Solution) Units(targetBytes float64) int {
	perUnit := float64(s.MediaPerUnit) * s.MediaBytes
	return int(math.Ceil(targetBytes / perUnit))
}

// Report is one Table I row.
type Report struct {
	Solution string
	Media    string
	Units    int
	MediaQty int
	// CapEx is the full capital expense; AttEx excludes media.
	CapEx Money
	AttEx Money
}

// Evaluate computes a solution's Table I row for the target capacity.
func (s Solution) Evaluate(targetBytes float64) Report {
	units := s.Units(targetBytes)
	mediaQty := units * s.MediaPerUnit
	attEx := Money(float64(units) * float64(s.UnitAttEx()))
	capEx := attEx + Money(float64(mediaQty)*float64(s.MediaCost))
	return Report{
		Solution: s.Name,
		Media:    s.MediaName,
		Units:    units,
		MediaQty: mediaQty,
		CapEx:    capEx,
		AttEx:    attEx,
	}
}

// Component prices used across models (from §VI and its citations).
const (
	sataDisk3TB      Money = 100  // commodity 3TB SATA
	nearlineSAS3TB   Money = 540  // enterprise near-line SAS premium
	lto6Cartridge    Money = 40   // 2.5TB LTO6
	usbICUnitCost    Money = 1.0  // hubs/switches/bridges: "<$1 each"
	bomMarkup              = 2.0  // BOM x2 retail markup [29]
	backblazeChassis Money = 3473 // pod 4.0 without drives (derived from Table I)
	pergamumChassis  Money = 2428 // pod minus motherboard (tomes keep the full backplane)
	ustoreChassis    Money = 1750 // pod minus all compute; §VI notes the freed
	// motherboard volume is what lets UStore pack 64 disks in the same 4U
	cubieboard3       Money = 65     // Pergamum tome ARM board
	gigEPortCost      Money = 4      // per 1GbE port (footnote 2)
	ustorePCBCabling  Money = 124    // PCB, cabling, 2x Arduino control plane
	md3260iEnclosure  Money = 27232  // MD3260i 60-bay shelf w/ controllers, support
	sl150Library      Money = 113430 // SL150 base library + drives per ~300 slots
	sl150SlotsPerUnit       = 300
)

// UStore builds the UStore solution from an actual production deploy-unit
// fabric: component counts come from fabric.BOM(), priced at the <$1 IC
// cost with the retail markup, plus the shared chassis.
func UStore() Solution {
	f, err := fabric.ProductionUnit()
	if err != nil {
		panic("cost: building production unit: " + err.Error())
	}
	b := f.BOM()
	return Solution{
		Name:         "UStore",
		MediaName:    "SATA HD",
		MediaBytes:   3e12,
		MediaCost:    sataDisk3TB,
		MediaPerUnit: b.Disks,
		PerUnit: []LineItem{
			{Name: "4U enclosure/PSU/fans (pod minus compute)", Qty: 1, UnitCost: ustoreChassis},
			{Name: "USB hubs", Qty: b.Hubs, UnitCost: usbICUnitCost * bomMarkup},
			{Name: "USB 2:1 switches", Qty: b.Switches, UnitCost: usbICUnitCost * bomMarkup},
			{Name: "SATA-USB bridges", Qty: b.Bridges, UnitCost: usbICUnitCost * bomMarkup},
			{Name: "PCB, cabling, control plane", Qty: 1, UnitCost: ustorePCBCabling},
		},
	}
}

// Backblaze is the storage-pod baseline (45 disks behind one low-end
// motherboard and a single GbE port).
func Backblaze() Solution {
	return Solution{
		Name:         "BACKBLAZE",
		MediaName:    "SATA HD",
		MediaBytes:   3e12,
		MediaCost:    sataDisk3TB,
		MediaPerUnit: 45,
		PerUnit: []LineItem{
			{Name: "Storage Pod 4.0 without drives", Qty: 1, UnitCost: backblazeChassis},
		},
	}
}

// Pergamum is the ARM-per-disk baseline, NVRAM removed, packed 45 tomes to
// the same 4U enclosure (§VI's normalization).
func Pergamum() Solution {
	return Solution{
		Name:         "Pergamum",
		MediaName:    "SATA HD",
		MediaBytes:   3e12,
		MediaCost:    sataDisk3TB,
		MediaPerUnit: 45,
		PerUnit: []LineItem{
			{Name: "4U enclosure/PSU/fans (pod minus motherboard)", Qty: 1, UnitCost: pergamumChassis},
			{Name: "Cubieboard3 ARM per tome", Qty: 45, UnitCost: cubieboard3},
			{Name: "1GbE port per tome", Qty: 45, UnitCost: gigEPortCost},
		},
	}
}

// MD3260i is the enterprise near-line-SAS product baseline.
func MD3260i() Solution {
	return Solution{
		Name:         "DELL PowerVault MD3260i",
		MediaName:    "Near-line SAS",
		MediaBytes:   3e12,
		MediaCost:    nearlineSAS3TB,
		MediaPerUnit: 60,
		PerUnit: []LineItem{
			{Name: "MD3260i 60-bay iSCSI enclosure", Qty: 1, UnitCost: md3260iEnclosure},
		},
	}
}

// SL150 is the tape library baseline. Tape pricing folds drives and
// robotics into the library line; Table I leaves its AttEx blank, so the
// whole library is treated as media infrastructure.
func SL150() Solution {
	return Solution{
		Name:         "Sun StorageTek SL150",
		MediaName:    "LTO6 Tape",
		MediaBytes:   2.5e12,
		MediaCost:    lto6Cartridge,
		MediaPerUnit: sl150SlotsPerUnit,
		PerUnit: []LineItem{
			{Name: "SL150 library, drives, robotics", Qty: 1, UnitCost: sl150Library},
		},
	}
}

// TableI evaluates all five solutions at 10 PB in the paper's row order.
func TableI() []Report {
	solutions := []Solution{MD3260i(), SL150(), Pergamum(), Backblaze(), UStore()}
	out := make([]Report, len(solutions))
	for i, s := range solutions {
		out[i] = s.Evaluate(TargetCapacityBytes)
	}
	return out
}

// Savings returns how much cheaper a is than b, as a fraction of b.
func Savings(a, b Money) float64 {
	return 1 - float64(a)/float64(b)
}
