// Package policy implements the server-side overload-protection primitives
// that keep a cold-storage cluster alive under multi-tenant traffic storms:
// token-bucket rate limiting (per tenant or per caller), admission control
// with bounded per-class queues and deadline-aware load shedding, a
// circuit breaker with half-open probing (shared with the client-side
// mitigation stack in core), and a spin-up-aware autoscaler that trades
// queue depth against the paper's power budget.
//
// The package is deliberately free of RPC, disk, and observability
// dependencies: every type is a deterministic state machine fed the
// current simulated time by its caller, so core can wire the pieces into
// the Master, the data path, and the power plane without import cycles,
// and unit tests can drive every edge without a cluster. Nothing here
// consumes randomness — same call sequence, same decisions.
package policy

import (
	"ustore/internal/simtime"
)

// ShedReason says why an admission request was rejected.
type ShedReason string

const (
	// ShedQueueFull: the class queue was at its limit on arrival.
	ShedQueueFull ShedReason = "queue-full"
	// ShedDeadline: the request waited longer than the class MaxWait.
	ShedDeadline ShedReason = "deadline"
)

// ClassConfig describes one admission class (a tenant tier).
type ClassConfig struct {
	// Name labels the class in reports ("premium", "batch", ...).
	Name string
	// Priority orders dispatch: lower numbers are served first whenever a
	// resource slot frees up. Ties dispatch in configuration order.
	Priority int
	// QueueLimit bounds how many requests of this class may wait; arrivals
	// beyond it are shed immediately (ShedQueueFull).
	QueueLimit int
	// MaxWait is the class's queueing deadline: a request still queued
	// after this long is shed (ShedDeadline) rather than served uselessly
	// late. Zero means no deadline.
	MaxWait simtime.Time
}
