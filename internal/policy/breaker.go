package policy

import (
	"time"

	"ustore/internal/simtime"
)

// Breaker defaults, chosen by the client mitigation stack (core) and kept
// here so both sides of the refactor share one definition.
const (
	// DefaultBreakerFails consecutive failures (or anomalously slow
	// completions — fail-slow is still a failure) open the breaker.
	DefaultBreakerFails = 3
	// DefaultBreakerOpenFor is the cool-down before a half-open probe.
	DefaultBreakerOpenFor = 5 * time.Second
)

// Breaker is a circuit breaker with half-open probing: after FailThreshold
// consecutive failures it opens for OpenFor, during which Open reports
// true; once the cool-down expires exactly one caller is let through as a
// probe (Open returns false for it) and that request's outcome decides the
// breaker's fate. The zero value uses the defaults above.
//
// This is the exact state machine PR 5's client-side mitigation used per
// block target, extracted so core's server-side protection can run the
// same breaker per disk.
type Breaker struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (0 = DefaultBreakerFails).
	FailThreshold int
	// OpenFor is the cool-down between opening and the half-open probe
	// (0 = DefaultBreakerOpenFor).
	OpenFor simtime.Time

	fails     int
	openUntil simtime.Time
	probing   bool
}

func (b *Breaker) failThreshold() int {
	if b.FailThreshold > 0 {
		return b.FailThreshold
	}
	return DefaultBreakerFails
}

func (b *Breaker) openFor() simtime.Time {
	if b.OpenFor > 0 {
		return b.OpenFor
	}
	return DefaultBreakerOpenFor
}

// OnSuccess records a clean completion: the streak resets and the breaker
// closes fully (a successful half-open probe lands here).
func (b *Breaker) OnSuccess() {
	b.fails = 0
	b.openUntil = 0
	b.probing = false
}

// OnFailure records a failure (or a slow success the caller has decided
// counts against the target). It returns true when this failure is the
// transition that opens the breaker — the caller's cue to count/log the
// open exactly once. A failed half-open probe re-opens for another
// cool-down and also returns true.
func (b *Breaker) OnFailure(now simtime.Time) (opened bool) {
	b.fails++
	b.probing = false
	if b.fails >= b.failThreshold() && b.openUntil <= now {
		b.openUntil = now + b.openFor()
		return true
	}
	return false
}

// Open reports whether the target is refusing traffic right now. At most
// one request per cool-down sees false while the breaker is otherwise
// open: that request is the half-open probe.
func (b *Breaker) Open(now simtime.Time) bool {
	if b.openUntil == 0 {
		return false
	}
	if now < b.openUntil {
		return true
	}
	if !b.probing {
		b.probing = true // this request is the half-open probe
		return false
	}
	return true
}
