package policy

import (
	"sort"

	"ustore/internal/simtime"
)

// AutoScalerConfig bounds the spin-up-aware autoscaler's decisions.
type AutoScalerConfig struct {
	// MinSpinning is the floor of spinning disks (the always-on active
	// set); the scaler never spins below it.
	MinSpinning int
	// MaxSpinning is the power budget's ceiling on simultaneously
	// spinning (or spinning-up) disks — the paper's whole premise is that
	// only a fraction of disks draw power at once.
	MaxSpinning int
	// MaxSpinningUp caps concurrent spin-ups (inrush current, §III-B
	// rolling spin-up).
	MaxSpinningUp int
	// IdleAfter is how long a scaler-managed disk must sit demand-free
	// before it is spun back down.
	IdleAfter simtime.Time
}

// DiskState is one disk's input row to Plan.
type DiskState struct {
	// Name identifies the disk (decision output uses it).
	Name string
	// Spinning is true while the disk is spun up or spinning up.
	Spinning bool
	// SpinningUp is true during the spin-up transient only.
	SpinningUp bool
	// Demand is the queued + in-flight request count targeting the disk.
	Demand int
	// ScaleDownCandidate marks disks the scaler may spin down (the ones
	// it spun up itself; the baseline active set stays up).
	ScaleDownCandidate bool
	// IdleSince is when the disk's demand last went to zero (only
	// meaningful for candidates with Demand == 0).
	IdleSince simtime.Time
}

// AutoScaler turns queue pressure into spin-up/spin-down decisions. It is
// a pure planner: Plan inspects a snapshot and names disks; the caller
// owns the actual power commands and readiness flips. Inputs are sorted
// by name internally, so map-ordered callers still get deterministic
// plans.
type AutoScaler struct {
	cfg AutoScalerConfig
}

// NewAutoScaler validates and wraps the config.
func NewAutoScaler(cfg AutoScalerConfig) *AutoScaler {
	if cfg.MaxSpinningUp <= 0 {
		cfg.MaxSpinningUp = 1
	}
	return &AutoScaler{cfg: cfg}
}

// Plan returns the disks to spin up and down right now. Spin-ups go to
// cold disks with pending demand, highest demand first (name-ordered on
// ties), respecting both the MaxSpinning power budget and the
// MaxSpinningUp inrush cap. Spin-downs take candidates that have sat
// demand-free past IdleAfter, provided the floor holds.
func (as *AutoScaler) Plan(now simtime.Time, disks []DiskState) (spinUp, spinDown []string) {
	sorted := make([]DiskState, len(disks))
	copy(sorted, disks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	spinning, up := 0, 0
	for _, d := range sorted {
		if d.Spinning {
			spinning++
		}
		if d.SpinningUp {
			up++
		}
	}

	// Scale up: cold disks with demand, heaviest backlog first.
	var cold []DiskState
	for _, d := range sorted {
		if !d.Spinning && d.Demand > 0 {
			cold = append(cold, d)
		}
	}
	sort.SliceStable(cold, func(i, j int) bool { return cold[i].Demand > cold[j].Demand })
	for _, d := range cold {
		if spinning >= as.cfg.MaxSpinning || up >= as.cfg.MaxSpinningUp {
			break
		}
		spinUp = append(spinUp, d.Name)
		spinning++
		up++
	}

	// Scale down: idle managed disks, but never below the floor and never
	// a disk still spinning up.
	for _, d := range sorted {
		if !d.Spinning || d.SpinningUp || !d.ScaleDownCandidate || d.Demand > 0 {
			continue
		}
		if as.cfg.IdleAfter > 0 && now-d.IdleSince < as.cfg.IdleAfter {
			continue
		}
		if spinning <= as.cfg.MinSpinning {
			break
		}
		spinDown = append(spinDown, d.Name)
		spinning--
	}
	return spinUp, spinDown
}
