package policy

import (
	"fmt"
	"sort"

	"ustore/internal/simtime"
)

// Admission is a bounded-queue, priority-ordered admission controller in
// front of a set of serving resources (disks). Each request names its
// class and the resource it needs; the controller grants it when the
// resource is ready (spinning) and under its concurrency cap, queues it
// while not, and sheds it when the class queue is full on arrival or the
// request outlives its class deadline.
//
// State machine per request:
//
//	Submit ──(queue full)──────────────▶ shed(queue-full)
//	Submit ─▶ queued ──(slot + ready)──▶ granted ─▶ ... ─▶ Release
//	              └────(MaxWait passes)─▶ shed(deadline)
//
// Dispatch runs on every Submit/Release/SetReady/Poll: classes in
// priority order, each class FIFO, skipping (not blocking on) requests
// whose resource is cold or saturated, so one spun-down disk never
// head-of-line-blocks a whole class. Callbacks are invoked only after
// queue surgery finishes, so a grant callback may synchronously Submit or
// Release without corrupting the walk.
type Admission struct {
	classes []*classState // sorted by (Priority, config order)
	byName  map[string]*classState
	res     map[string]*resourceState
	slotCap int

	dispatching bool
	dirty       bool
}

type classState struct {
	cfg   ClassConfig
	queue []*request

	// Cumulative outcome counters (reports read them via ClassStats).
	admitted  uint64
	shedFull  uint64
	shedLate  uint64
	maxQueued int
}

type resourceState struct {
	ready    bool
	inflight int
}

type request struct {
	class    *classState
	resource string
	enqueued simtime.Time
	grant    func()
	shed     func(ShedReason)
}

// NewAdmission builds a controller over the given classes. slotCap is the
// per-resource concurrency cap (how many granted requests may be in
// flight against one resource; disks serve one IO at a time, so 1 keeps
// disk queues empty and the backlog where the shedder can see it).
// Resources start not-ready; SetReady flips them.
func NewAdmission(classes []ClassConfig, slotCap int) *Admission {
	if slotCap <= 0 {
		slotCap = 1
	}
	a := &Admission{
		byName:  make(map[string]*classState, len(classes)),
		res:     make(map[string]*resourceState),
		slotCap: slotCap,
	}
	for _, cfg := range classes {
		cs := &classState{cfg: cfg}
		a.classes = append(a.classes, cs)
		a.byName[cfg.Name] = cs
	}
	sort.SliceStable(a.classes, func(i, j int) bool {
		return a.classes[i].cfg.Priority < a.classes[j].cfg.Priority
	})
	return a
}

func (a *Admission) resource(name string) *resourceState {
	rs, ok := a.res[name]
	if !ok {
		rs = &resourceState{}
		a.res[name] = rs
	}
	return rs
}

// SetReady marks a resource able (or unable) to accept grants — the
// autoscaler flips this as disks spin up and down. Turning a resource
// ready dispatches its backlog.
func (a *Admission) SetReady(now simtime.Time, name string, ready bool) {
	a.resource(name).ready = ready
	a.dispatch(now)
}

// Submit offers one request. Exactly one of grant or shed is eventually
// called (possibly synchronously, after this Submit's queue surgery). The
// caller must call Release(resource) once a granted request finishes.
func (a *Admission) Submit(now simtime.Time, class, resource string, grant func(), shed func(ShedReason)) {
	cs, ok := a.byName[class]
	if !ok {
		panic(fmt.Sprintf("policy: unknown admission class %q", class))
	}
	// Queue-full shed fires synchronously: Submit is never called from
	// inside dispatch's queue walk (only from its callback phase, where
	// re-entry is safe), so the callback cannot corrupt surgery.
	if cs.cfg.QueueLimit > 0 && len(cs.queue) >= cs.cfg.QueueLimit {
		cs.shedFull++
		shed(ShedQueueFull)
		return
	}
	cs.queue = append(cs.queue, &request{
		class: cs, resource: resource, enqueued: now, grant: grant, shed: shed,
	})
	if len(cs.queue) > cs.maxQueued {
		cs.maxQueued = len(cs.queue)
	}
	a.dispatch(now)
}

// Release returns a granted request's resource slot and dispatches the
// backlog.
func (a *Admission) Release(now simtime.Time, resource string) {
	rs := a.resource(resource)
	if rs.inflight > 0 {
		rs.inflight--
	}
	a.dispatch(now)
}

// Poll re-runs deadline shedding and dispatch with no other state change
// (called from a ticker so queued requests are shed on time even during
// event lulls).
func (a *Admission) Poll(now simtime.Time) { a.dispatch(now) }

// dispatch is the scheduler: shed expired requests, then grant as many
// queued requests as ready resources have slots for, priority classes
// first, FIFO within a class. Callbacks collected during the walk run
// after it; if they re-enter (Submit/Release from a grant), the walk
// re-runs until stable.
func (a *Admission) dispatch(now simtime.Time) {
	if a.dispatching {
		a.dirty = true
		return
	}
	a.dispatching = true
	for {
		a.dirty = false
		var fire []func()
		for _, cs := range a.classes {
			kept := cs.queue[:0]
			for _, rq := range cs.queue {
				if cs.cfg.MaxWait > 0 && now-rq.enqueued >= cs.cfg.MaxWait {
					cs.shedLate++
					rq := rq
					fire = append(fire, func() { rq.shed(ShedDeadline) })
					continue
				}
				rs := a.resource(rq.resource)
				if rs.ready && rs.inflight < a.slotCap {
					rs.inflight++
					cs.admitted++
					rq := rq
					fire = append(fire, func() { rq.grant() })
					continue
				}
				kept = append(kept, rq)
			}
			// Zero the tail so dropped requests don't pin memory.
			for i := len(kept); i < len(cs.queue); i++ {
				cs.queue[i] = nil
			}
			cs.queue = kept
		}
		for _, fn := range fire {
			fn()
		}
		if !a.dirty {
			break
		}
	}
	a.dispatching = false
}

// QueueDepth returns the total queued count across classes.
func (a *Admission) QueueDepth() int {
	n := 0
	for _, cs := range a.classes {
		n += len(cs.queue)
	}
	return n
}

// Demand returns, per resource, the queued + in-flight request count —
// the autoscaler's pressure signal. Only resources with nonzero demand
// or state appear.
func (a *Admission) Demand() map[string]int {
	d := make(map[string]int)
	for _, cs := range a.classes {
		for _, rq := range cs.queue {
			d[rq.resource]++
		}
	}
	for name, rs := range a.res {
		if rs.inflight > 0 {
			d[name] += rs.inflight
		}
	}
	return d
}

// ClassStats is one class's cumulative admission outcomes.
type ClassStats struct {
	Name         string
	Admitted     uint64
	ShedFull     uint64
	ShedDeadline uint64
	Queued       int // current depth
	MaxQueued    int // high-water mark
}

// Stats returns per-class outcome counters in priority order.
func (a *Admission) Stats() []ClassStats {
	out := make([]ClassStats, 0, len(a.classes))
	for _, cs := range a.classes {
		out = append(out, ClassStats{
			Name:         cs.cfg.Name,
			Admitted:     cs.admitted,
			ShedFull:     cs.shedFull,
			ShedDeadline: cs.shedLate,
			Queued:       len(cs.queue),
			MaxQueued:    cs.maxQueued,
		})
	}
	return out
}
