package policy

// BucketPool carves TokenBuckets out of chunked backing arrays instead of
// allocating each one individually. Per-tenant and per-caller limiter maps
// create a bucket the first time an identity shows up — on the Admit /
// metadata-RPC hot path — and a multi-tenant storm can mint thousands of
// them; a chunk allocation amortizes that to one heap object per
// bucketPoolChunk tenants. Buckets handed out are identical to
// &TokenBucket{Rate: rate, Burst: burst} and stay valid for the pool's
// lifetime (chunks are never reused or freed while referenced).
type BucketPool struct {
	rate  float64
	burst float64
	chunk []TokenBucket
	next  int
}

// bucketPoolChunk is buckets per backing array: big enough to amortize
// allocation, small enough that a mostly-idle pool wastes little.
const bucketPoolChunk = 64

// NewBucketPool returns a pool minting buckets with the given rate/burst.
func NewBucketPool(rate, burst float64) *BucketPool {
	return &BucketPool{rate: rate, burst: burst}
}

// Get returns a fresh zero-state bucket with the pool's rate and burst.
func (p *BucketPool) Get() *TokenBucket {
	if p.next == len(p.chunk) {
		p.chunk = make([]TokenBucket, bucketPoolChunk)
		p.next = 0
	}
	tb := &p.chunk[p.next]
	p.next++
	tb.Rate = p.rate
	tb.Burst = p.burst
	return tb
}
