package policy

import (
	"testing"
	"time"

	"ustore/internal/simtime"
)

func at(d time.Duration) simtime.Time { return simtime.Time(d) }

func TestTokenBucketBurstThenRate(t *testing.T) {
	tb := &TokenBucket{Rate: 2, Burst: 4}
	now := at(0)
	for i := 0; i < 4; i++ {
		if !tb.Allow(now) {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if tb.Allow(now) {
		t.Fatal("request beyond burst admitted")
	}
	// 1s refills 2 tokens.
	now = at(time.Second)
	if got := tb.Tokens(now); got != 2 {
		t.Fatalf("tokens after 1s = %g, want 2", got)
	}
	if !tb.TakeN(now, 2) {
		t.Fatal("refilled tokens not spendable")
	}
	if tb.Allow(now) {
		t.Fatal("empty bucket admitted")
	}
	// Refill clamps at Burst.
	now = at(time.Hour)
	if got := tb.Tokens(now); got != 4 {
		t.Fatalf("tokens after an hour = %g, want burst cap 4", got)
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	b := &Breaker{FailThreshold: 3, OpenFor: 5 * time.Second}
	now := at(0)
	if b.Open(now) {
		t.Fatal("fresh breaker open")
	}
	if b.OnFailure(now) || b.OnFailure(now) {
		t.Fatal("breaker opened before threshold")
	}
	if !b.OnFailure(now) {
		t.Fatal("third failure did not open the breaker")
	}
	if !b.Open(at(time.Second)) {
		t.Fatal("breaker closed during cool-down")
	}
	// Cool-down over: exactly one probe slips through.
	probe := at(6 * time.Second)
	if b.Open(probe) {
		t.Fatal("half-open probe was refused")
	}
	if !b.Open(probe) {
		t.Fatal("second request during probe not refused")
	}
	// Failed probe re-opens (and reports the transition).
	if !b.OnFailure(probe) {
		t.Fatal("failed probe did not re-open")
	}
	if !b.Open(at(7 * time.Second)) {
		t.Fatal("breaker closed after failed probe")
	}
	// Successful probe closes fully.
	later := at(12 * time.Second)
	if b.Open(later) {
		t.Fatal("probe refused after second cool-down")
	}
	b.OnSuccess()
	if b.Open(later) {
		t.Fatal("breaker open after clean success")
	}
	if b.fails != 0 {
		t.Fatalf("fails = %d after success, want 0", b.fails)
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	b := &Breaker{}
	now := at(0)
	opened := false
	for i := 0; i < DefaultBreakerFails; i++ {
		opened = b.OnFailure(now)
	}
	if !opened {
		t.Fatal("default threshold did not open the breaker")
	}
	if !b.Open(at(DefaultBreakerOpenFor - time.Millisecond)) {
		t.Fatal("breaker closed inside default cool-down")
	}
	if b.Open(at(DefaultBreakerOpenFor + time.Millisecond)) {
		t.Fatal("no probe after default cool-down")
	}
}

func admissionClasses() []ClassConfig {
	return []ClassConfig{
		{Name: "premium", Priority: 0, QueueLimit: 4, MaxWait: 2 * time.Second},
		{Name: "batch", Priority: 2, QueueLimit: 2, MaxWait: 10 * time.Second},
	}
}

func TestAdmissionGrantAndQueueFull(t *testing.T) {
	a := NewAdmission(admissionClasses(), 1)
	a.SetReady(at(0), "d1", true)

	granted := 0
	a.Submit(at(0), "premium", "d1", func() { granted++ }, func(ShedReason) { t.Fatal("shed") })
	if granted != 1 {
		t.Fatalf("ready resource did not grant immediately: %d", granted)
	}
	// Slot cap 1: the next three queue, the two beyond batch's limit shed.
	var sheds []ShedReason
	a.Submit(at(0), "batch", "d1", func() { t.Fatal("granted past cap") }, func(r ShedReason) { sheds = append(sheds, r) })
	a.Submit(at(0), "batch", "d1", func() { t.Fatal("granted past cap") }, func(r ShedReason) { sheds = append(sheds, r) })
	a.Submit(at(0), "batch", "d1", func() {}, func(r ShedReason) { sheds = append(sheds, r) })
	if len(sheds) != 1 || sheds[0] != ShedQueueFull {
		t.Fatalf("sheds = %v, want one queue-full", sheds)
	}
	if a.QueueDepth() != 2 {
		t.Fatalf("depth = %d, want 2", a.QueueDepth())
	}
	st := a.Stats()
	if st[1].Name != "batch" || st[1].ShedFull != 1 {
		t.Fatalf("batch stats = %+v, want ShedFull 1", st[1])
	}
}

func TestAdmissionPriorityAndRelease(t *testing.T) {
	a := NewAdmission(admissionClasses(), 1)
	a.SetReady(at(0), "d1", true)
	var order []string
	grant := func(name string) func() { return func() { order = append(order, name) } }
	noShed := func(ShedReason) { t.Fatal("shed") }

	a.Submit(at(0), "batch", "d1", grant("b1"), noShed) // takes the slot
	a.Submit(at(0), "batch", "d1", grant("b2"), noShed)
	a.Submit(at(0), "premium", "d1", grant("p1"), noShed)

	a.Release(at(time.Second), "d1") // premium must preempt the older batch request
	a.Release(at(time.Second), "d1")
	want := []string{"b1", "p1", "b2"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("grant order = %v, want %v", order, want)
	}
}

func TestAdmissionDeadlineShed(t *testing.T) {
	a := NewAdmission(admissionClasses(), 1)
	a.SetReady(at(0), "d1", true)
	a.Submit(at(0), "premium", "d1", func() {}, func(ShedReason) { t.Fatal("shed the slot holder") })

	var shed ShedReason
	a.Submit(at(0), "premium", "d1", func() { t.Fatal("granted after deadline") }, func(r ShedReason) { shed = r })
	a.Poll(at(3 * time.Second)) // premium MaxWait is 2s
	if shed != ShedDeadline {
		t.Fatalf("shed = %q, want deadline", shed)
	}
	st := a.Stats()
	if st[0].ShedDeadline != 1 {
		t.Fatalf("premium ShedDeadline = %d, want 1", st[0].ShedDeadline)
	}
}

func TestAdmissionColdResourceDoesNotBlockClass(t *testing.T) {
	a := NewAdmission(admissionClasses(), 1)
	a.SetReady(at(0), "warm", true) // "cold" stays not-ready
	var order []string
	a.Submit(at(0), "premium", "cold", func() { order = append(order, "cold") }, func(ShedReason) {})
	a.Submit(at(0), "premium", "warm", func() { order = append(order, "warm") }, func(ShedReason) {})
	if len(order) != 1 || order[0] != "warm" {
		t.Fatalf("order = %v, want the warm request granted past the cold one", order)
	}
	// The cold request is granted as soon as its disk comes up.
	a.SetReady(at(time.Second), "cold", true)
	if len(order) != 2 || order[1] != "cold" {
		t.Fatalf("order = %v, want cold granted after SetReady", order)
	}
}

func TestAdmissionGrantCallbackMayReenter(t *testing.T) {
	a := NewAdmission(admissionClasses(), 1)
	a.SetReady(at(0), "d1", true)
	got := 0
	// The grant callback synchronously releases and resubmits; the
	// controller must survive the re-entry and keep granting.
	var serve func()
	serve = func() {
		got++
		if got < 5 {
			a.Release(at(0), "d1")
			a.Submit(at(0), "premium", "d1", serve, func(ShedReason) {})
		}
	}
	a.Submit(at(0), "premium", "d1", serve, func(ShedReason) {})
	if got != 5 {
		t.Fatalf("re-entrant grants = %d, want 5", got)
	}
}

func TestAdmissionDemand(t *testing.T) {
	a := NewAdmission(admissionClasses(), 1)
	a.SetReady(at(0), "d1", true)
	a.Submit(at(0), "premium", "d1", func() {}, func(ShedReason) {}) // in flight
	a.Submit(at(0), "premium", "d2", func() {}, func(ShedReason) {}) // queued (cold)
	a.Submit(at(0), "batch", "d2", func() {}, func(ShedReason) {})   // queued (cold)
	d := a.Demand()
	if d["d1"] != 1 || d["d2"] != 2 {
		t.Fatalf("demand = %v, want d1:1 d2:2", d)
	}
}

func TestAutoScalerPlan(t *testing.T) {
	as := NewAutoScaler(AutoScalerConfig{
		MinSpinning: 2, MaxSpinning: 4, MaxSpinningUp: 1, IdleAfter: time.Minute,
	})
	disks := []DiskState{
		{Name: "d1", Spinning: true, Demand: 3},
		{Name: "d2", Spinning: true, Demand: 0},
		{Name: "d3", Demand: 5}, // cold, heavy backlog
		{Name: "d4", Demand: 1}, // cold, light backlog
		{Name: "d5", Demand: 0}, // cold, no demand
	}
	up, down := as.Plan(at(0), disks)
	if len(up) != 1 || up[0] != "d3" {
		t.Fatalf("spinUp = %v, want [d3] (inrush cap 1, heaviest first)", up)
	}
	if len(down) != 0 {
		t.Fatalf("spinDown = %v, want none (no candidates)", down)
	}

	// With d3 now spinning-up, the inrush cap blocks d4.
	disks[2] = DiskState{Name: "d3", Spinning: true, SpinningUp: true, Demand: 5}
	up, _ = as.Plan(at(0), disks)
	if len(up) != 0 {
		t.Fatalf("spinUp = %v, want none while d3 is in its spin-up transient", up)
	}

	// d3 finished and drained; as a candidate idle past the window it spins
	// back down, but d2 (not a candidate) stays up.
	disks[2] = DiskState{Name: "d3", Spinning: true, ScaleDownCandidate: true, IdleSince: at(0)}
	disks[3] = DiskState{Name: "d4", Demand: 0}
	up, down = as.Plan(at(2*time.Minute), disks)
	if len(up) != 0 {
		t.Fatalf("spinUp = %v, want none", up)
	}
	if len(down) != 1 || down[0] != "d3" {
		t.Fatalf("spinDown = %v, want [d3]", down)
	}

	// Power budget: with 4 spinning and demand on a cold disk, no spin-up.
	budget := []DiskState{
		{Name: "d1", Spinning: true}, {Name: "d2", Spinning: true},
		{Name: "d3", Spinning: true}, {Name: "d4", Spinning: true},
		{Name: "d5", Demand: 9},
	}
	up, _ = as.Plan(at(0), budget)
	if len(up) != 0 {
		t.Fatalf("spinUp = %v, want none at the power budget", up)
	}
}

func TestAutoScalerFloor(t *testing.T) {
	as := NewAutoScaler(AutoScalerConfig{MinSpinning: 2, MaxSpinning: 4, MaxSpinningUp: 2})
	disks := []DiskState{
		{Name: "d1", Spinning: true, ScaleDownCandidate: true, IdleSince: at(0)},
		{Name: "d2", Spinning: true, ScaleDownCandidate: true, IdleSince: at(0)},
	}
	_, down := as.Plan(at(time.Hour), disks)
	if len(down) != 0 {
		t.Fatalf("spinDown = %v, want none at the floor", down)
	}
}
