package policy

import (
	"ustore/internal/simtime"
)

// TokenBucket is the classic rate limiter: tokens refill continuously at
// Rate per second up to Burst, and each admitted request spends one. The
// bucket starts full, so a tenant's first burst up to Burst sails through
// and sustained demand is clipped to Rate. All arithmetic is driven by the
// caller-supplied clock; identical call sequences make identical
// decisions.
type TokenBucket struct {
	// Rate is the sustained refill in tokens per second.
	Rate float64
	// Burst is the bucket capacity (also the initial fill).
	Burst float64

	tokens float64
	last   simtime.Time
	primed bool
}

// refill advances the bucket to now.
func (tb *TokenBucket) refill(now simtime.Time) {
	if !tb.primed {
		tb.tokens = tb.Burst
		tb.last = now
		tb.primed = true
		return
	}
	if now <= tb.last {
		return
	}
	tb.tokens += (now - tb.last).Seconds() * tb.Rate
	if tb.tokens > tb.Burst {
		tb.tokens = tb.Burst
	}
	tb.last = now
}

// Allow spends one token if available and reports whether it could.
func (tb *TokenBucket) Allow(now simtime.Time) bool {
	return tb.TakeN(now, 1)
}

// TakeN spends n tokens atomically if available (weighted requests: a
// 4MiB restore can cost more than a stat).
func (tb *TokenBucket) TakeN(now simtime.Time, n float64) bool {
	tb.refill(now)
	if tb.tokens < n {
		return false
	}
	tb.tokens -= n
	return true
}

// Tokens reports the current fill after advancing to now (for tests and
// reports).
func (tb *TokenBucket) Tokens(now simtime.Time) float64 {
	tb.refill(now)
	return tb.tokens
}
