package policy

import (
	"testing"
	"time"
)

// TestBucketPoolMatchesDirectAllocation proves pooled buckets behave exactly
// like individually allocated ones across the full bucket lifecycle.
func TestBucketPoolMatchesDirectAllocation(t *testing.T) {
	pool := NewBucketPool(2, 4)
	for i := 0; i < 3*bucketPoolChunk; i++ {
		pooled := pool.Get()
		direct := &TokenBucket{Rate: 2, Burst: 4}
		for step := 0; step < 8; step++ {
			now := at(time.Duration(step) * time.Second)
			if got, want := pooled.Allow(now), direct.Allow(now); got != want {
				t.Fatalf("bucket %d step %d: pooled Allow=%v, direct=%v", i, step, got, want)
			}
			if got, want := pooled.Tokens(now), direct.Tokens(now); got != want {
				t.Fatalf("bucket %d step %d: pooled Tokens=%v, direct=%v", i, step, got, want)
			}
		}
	}
}

// TestBucketPoolBucketsAreIndependent checks draining one pooled bucket
// leaves its chunk neighbors untouched.
func TestBucketPoolBucketsAreIndependent(t *testing.T) {
	pool := NewBucketPool(0, 2)
	a, b := pool.Get(), pool.Get()
	now := at(0)
	a.Allow(now)
	a.Allow(now)
	if a.Allow(now) {
		t.Fatal("bucket a should be empty")
	}
	if !b.Allow(now) || !b.Allow(now) {
		t.Fatal("bucket b lost tokens it never spent")
	}
}

func BenchmarkTokenBucketDirect(b *testing.B) {
	var sink *TokenBucket
	for i := 0; i < b.N; i++ {
		sink = &TokenBucket{Rate: 100, Burst: 50}
	}
	_ = sink
}

func BenchmarkTokenBucketPooled(b *testing.B) {
	pool := NewBucketPool(100, 50)
	var sink *TokenBucket
	for i := 0; i < b.N; i++ {
		sink = pool.Get()
	}
	_ = sink
}
