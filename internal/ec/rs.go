package ec

import (
	"errors"
	"fmt"
)

// Errors returned by the codec.
var (
	// ErrShardSize is returned when shards have mismatched lengths.
	ErrShardSize = errors.New("ec: shard size mismatch")
	// ErrTooFewShards is returned when fewer than k shards survive.
	ErrTooFewShards = errors.New("ec: too few shards to reconstruct")
	// ErrBadParams is returned for invalid k/m.
	ErrBadParams = errors.New("ec: invalid parameters")
)

// Code is a systematic RS(k, m) codec: Split data into k shards, Encode m
// parity shards, Reconstruct from any k survivors.
type Code struct {
	k, m int
	// encode is the m x k parity-generation matrix: a Cauchy matrix, so
	// the full generator [I; encode] is MDS (every k x k submatrix of
	// surviving rows is invertible — any k of k+m shards reconstruct).
	encode [][]byte
}

// New creates an RS(k, m) codec. k+m must be at most 256 (the GF(256)
// field provides that many distinct Cauchy evaluation points).
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrBadParams, k, m)
	}
	// Cauchy construction: encode[r][c] = 1 / (x_r ^ y_c) with the x and
	// y evaluation points drawn from disjoint element sets. Every square
	// submatrix of a Cauchy matrix is nonsingular, which gives the MDS
	// property for the systematic generator.
	encode := make([][]byte, m)
	for r := 0; r < m; r++ {
		encode[r] = make([]byte, k)
		xr := byte(k + r)
		for c := 0; c < k; c++ {
			encode[r][c] = gfInv(xr ^ byte(c))
		}
	}
	return &Code{k: k, m: m, encode: encode}, nil
}

// K and M return the codec's shape.
func (c *Code) K() int { return c.k }
func (c *Code) M() int { return c.m }

// Split pads data and cuts it into k equal shards. The original length
// must be carried out of band (Join takes it back).
func (c *Code) Split(data []byte) [][]byte {
	shardLen := (len(data) + c.k - 1) / c.k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join reassembles Split's output back into data of the original length.
func (c *Code) Join(shards [][]byte, length int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, fmt.Errorf("%w: %d of %d", ErrTooFewShards, len(shards), c.k)
	}
	out := make([]byte, 0, length)
	for i := 0; i < c.k && len(out) < length; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing (reconstruct first)", ErrTooFewShards, i)
		}
		take := length - len(out)
		if take > len(shards[i]) {
			take = len(shards[i])
		}
		out = append(out, shards[i][:take]...)
	}
	return out, nil
}

// Encode computes the m parity shards for k data shards.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: %d data shards, want %d", ErrBadParams, len(data), c.k)
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, ErrShardSize
		}
	}
	parity := make([][]byte, c.m)
	for r := 0; r < c.m; r++ {
		parity[r] = make([]byte, size)
		for col, shard := range data {
			mulAddSlice(parity[r], shard, c.encode[r][col])
		}
	}
	return parity, nil
}

// Reconstruct fills in missing shards (nil entries) from the survivors.
// shards must have length k+m, ordered data shards first then parity. At
// least k entries must be non-nil.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: %d shards, want %d", ErrBadParams, len(shards), c.k+c.m)
	}
	present := 0
	size := -1
	for _, s := range shards {
		if s != nil {
			present++
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return ErrShardSize
			}
		}
	}
	if present < c.k {
		return fmt.Errorf("%w: %d of %d", ErrTooFewShards, present, c.k)
	}
	missingData := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missingData = true
		}
	}
	if missingData {
		if err := c.solveData(shards, size); err != nil {
			return err
		}
	}
	// Regenerate any missing parity from the (now complete) data shards.
	for r := 0; r < c.m; r++ {
		if shards[c.k+r] != nil {
			continue
		}
		p := make([]byte, size)
		for col := 0; col < c.k; col++ {
			mulAddSlice(p, shards[col], c.encode[r][col])
		}
		shards[c.k+r] = p
	}
	return nil
}

// solveData recovers the missing data shards by inverting the sub-matrix
// of surviving rows.
func (c *Code) solveData(shards [][]byte, size int) error {
	// Select k surviving rows: identity rows for present data shards,
	// encode rows for surviving parity shards.
	matrix := make([][]byte, 0, c.k)
	inputs := make([][]byte, 0, c.k)
	for i := 0; i < c.k && len(matrix) < c.k; i++ {
		if shards[i] != nil {
			row := make([]byte, c.k)
			row[i] = 1
			matrix = append(matrix, row)
			inputs = append(inputs, shards[i])
		}
	}
	for r := 0; r < c.m && len(matrix) < c.k; r++ {
		if shards[c.k+r] != nil {
			row := append([]byte(nil), c.encode[r]...)
			matrix = append(matrix, row)
			inputs = append(inputs, shards[c.k+r])
		}
	}
	inv, err := invertMatrix(matrix)
	if err != nil {
		return err
	}
	// data[i] = sum_j inv[i][j] * inputs[j]; compute only missing rows.
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			continue
		}
		out := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(out, inputs[j], inv[i][j])
		}
		shards[i] = out
	}
	return nil
}

// invertMatrix returns the inverse of a square GF(256) matrix via
// Gauss-Jordan elimination.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Work on an augmented copy [M | I].
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("%w: singular decode matrix", ErrTooFewShards)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := gfInv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = gfMul(aug[col][c], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= gfMul(f, aug[col][c])
			}
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = aug[i][n:]
	}
	return out, nil
}
