// Package ec implements Reed-Solomon erasure coding over GF(2^8), the
// redundancy technique the paper expects upper-layer services to bring
// (§IV-E: "UStore delegates data recovery of failed disks to the data
// redundancy mechanisms supported by upper layer services"; §VIII cites
// erasure coding in Windows Azure Storage).
//
// The code is a classic systematic Vandermonde-based RS(k, m): k data
// shards produce m parity shards; any k of the k+m shards reconstruct the
// original data. Arithmetic is over GF(256) with the 0x11D primitive
// polynomial, using log/exp tables.
package ec

// gf256 log/exp tables for the AES-adjacent primitive polynomial x^8 + x^4
// + x^3 + x^2 + 1 (0x11D), generator 2.
var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(256).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides in GF(256); division by zero panics (a programming error:
// the decode matrix is invertible by construction).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]+255-gfLog[b]]
}

// gfPow raises the generator's power: g^n.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte {
	if a == 0 {
		panic("ec: inverse of zero")
	}
	return gfExp[255-gfLog[a]]
}

// mulSlice computes dst += c * src over GF(256) (dst and src same length).
func mulAddSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	logC := gfLog[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+gfLog[s]]
		}
	}
}
