package ec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check field behaviour over all nonzero elements.
	for a := 1; a < 256; a++ {
		ab := byte(a)
		if gfMul(ab, gfInv(ab)) != 1 {
			t.Fatalf("a * a^-1 != 1 for %d", a)
		}
		if gfDiv(ab, ab) != 1 {
			t.Fatalf("a/a != 1 for %d", a)
		}
		if gfMul(ab, 1) != ab {
			t.Fatalf("a*1 != a for %d", a)
		}
		if gfMul(ab, 0) != 0 {
			t.Fatalf("a*0 != 0 for %d", a)
		}
	}
	// gfPow agrees with repeated multiplication of the generator.
	acc := byte(1)
	for n := 0; n < 300; n++ {
		if gfPow(n) != acc {
			t.Fatalf("gfPow(%d) = %d, want %d", n, gfPow(n), acc)
		}
		acc = gfMul(acc, 2)
	}
	if gfPow(-3) != gfPow(252) {
		t.Fatal("negative exponent not wrapped")
	}
	// Distributivity on a sample grid.
	for a := 0; a < 256; a += 17 {
		for b := 0; b < 256; b += 13 {
			for c := 0; c < 256; c += 29 {
				left := gfMul(byte(a), byte(b)^byte(c))
				right := gfMul(byte(a), byte(b)) ^ gfMul(byte(a), byte(c))
				if left != right {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 3}, {3, 0}, {200, 60}, {-1, 2}} {
		if _, err := New(bad[0], bad[1]); err == nil {
			t.Fatalf("New(%d,%d) accepted", bad[0], bad[1])
		}
	}
	if _, err := New(10, 4); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeReconstructAllSingleLosses(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy cold-storage disk")
	shards := c.Split(data)
	parity, err := c.Encode(shards)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte(nil), shards...), parity...)
	for lose := 0; lose < len(all); lose++ {
		test := make([][]byte, len(all))
		for i := range all {
			if i != lose {
				test[i] = append([]byte(nil), all[i]...)
			}
		}
		if err := c.Reconstruct(test); err != nil {
			t.Fatalf("losing shard %d: %v", lose, err)
		}
		got, err := c.Join(test[:c.K()], len(data))
		if err != nil {
			t.Fatalf("join after losing %d: %v", lose, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("data corrupted after losing shard %d", lose)
		}
		// Reconstructed parity matches the original too.
		for i := range all {
			if !bytes.Equal(test[i], all[i]) {
				t.Fatalf("shard %d reconstructed differently after losing %d", i, lose)
			}
		}
	}
}

func TestAllDoubleLosses(t *testing.T) {
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3000)
	rng := rand.New(rand.NewSource(5))
	rng.Read(data)
	shards := c.Split(data)
	parity, _ := c.Encode(shards)
	all := append(append([][]byte(nil), shards...), parity...)
	n := len(all)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			test := make([][]byte, n)
			for i := range all {
				if i != a && i != b {
					test[i] = all[i]
				}
			}
			if err := c.Reconstruct(test); err != nil {
				t.Fatalf("losing %d,%d: %v", a, b, err)
			}
			got, _ := c.Join(test[:c.K()], len(data))
			if !bytes.Equal(got, data) {
				t.Fatalf("corrupted after losing %d,%d", a, b)
			}
		}
	}
}

func TestTooManyLossesRefused(t *testing.T) {
	c, _ := New(4, 2)
	data := make([]byte, 100)
	shards := c.Split(data)
	parity, _ := c.Encode(shards)
	all := append(shards, parity...)
	test := make([][]byte, len(all))
	for i := 3; i < len(all); i++ {
		test[i] = all[i] // only 3 survivors of k=4
	}
	if err := c.Reconstruct(test); err == nil {
		t.Fatal("reconstructed from fewer than k shards")
	}
}

func TestShardSizeMismatch(t *testing.T) {
	c, _ := New(3, 2)
	bad := [][]byte{make([]byte, 10), make([]byte, 11), make([]byte, 10)}
	if _, err := c.Encode(bad); err == nil {
		t.Fatal("mismatched shard sizes accepted")
	}
}

func TestSplitJoinRoundTripOddSizes(t *testing.T) {
	c, _ := New(5, 2)
	for _, n := range []int{0, 1, 4, 5, 6, 99, 1000, 4096} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		shards := c.Split(data)
		if len(shards) != 5 {
			t.Fatalf("split produced %d shards", len(shards))
		}
		got, err := c.Join(shards, n)
		if err != nil {
			t.Fatalf("join(%d): %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip failed at %d bytes", n)
		}
	}
}

// Property: for random (k, m), random data, and a random loss pattern of at
// most m shards, reconstruction restores the exact data.
func TestPropertyReconstructAnyMLosses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := make([]byte, 1+rng.Intn(2000))
		rng.Read(data)
		shards := c.Split(data)
		parity, err := c.Encode(shards)
		if err != nil {
			return false
		}
		all := append(append([][]byte(nil), shards...), parity...)
		// Lose up to m random shards.
		losses := rng.Perm(k + m)[:rng.Intn(m+1)]
		test := make([][]byte, k+m)
		lost := map[int]bool{}
		for _, l := range losses {
			lost[l] = true
		}
		for i := range all {
			if !lost[i] {
				test[i] = append([]byte(nil), all[i]...)
			}
		}
		if err := c.Reconstruct(test); err != nil {
			return false
		}
		got, err := c.Join(test[:k], len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode4x2(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 4<<20)
	shards := c.Split(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructOneLoss(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 4<<20)
	shards := c.Split(data)
	parity, _ := c.Encode(shards)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		test := make([][]byte, 6)
		for j := 1; j < 4; j++ {
			test[j] = shards[j]
		}
		test[4], test[5] = parity[0], parity[1]
		if err := c.Reconstruct(test); err != nil {
			b.Fatal(err)
		}
	}
}
