package block

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// This file carries the UBLK protocol over a real net.Conn, demonstrating
// that the wire codec is transport-independent (the simulated data center
// and a loopback TCP connection speak identical bytes). Only synchronous
// volumes (MemVolume) make sense here — there is no simulation scheduler.

// ServeConn serves one connection until EOF or protocol error. volumes maps
// export names to synchronous volumes.
func ServeConn(conn net.Conn, volumes map[string]Volume) error {
	defer conn.Close()
	var buf []byte
	tmp := make([]byte, 64*1024)
	loggedIn := make(map[string]bool)
	for {
		n, err := conn.Read(tmp)
		if n > 0 {
			buf = append(buf, tmp[:n]...)
			for {
				m, consumed, derr := Decode(buf)
				if derr == ErrTruncated {
					break
				}
				if derr != nil {
					return fmt.Errorf("decoding request: %w", derr)
				}
				buf = buf[consumed:]
				resp := serveSync(m, volumes, loggedIn)
				if resp == nil {
					continue
				}
				if _, werr := conn.Write(resp.Encode()); werr != nil {
					return fmt.Errorf("writing response: %w", werr)
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("reading: %w", err)
		}
	}
}

func serveSync(m *Msg, volumes map[string]Volume, loggedIn map[string]bool) *Msg {
	switch m.Type {
	case MsgLogin:
		vol, ok := volumes[m.Volume]
		if !ok {
			return &Msg{Type: MsgLoginResp, Tag: m.Tag, Status: StatusNoVolume}
		}
		loggedIn[m.Volume] = true
		return &Msg{Type: MsgLoginResp, Tag: m.Tag, Size: uint64(vol.Size())}
	case MsgLogout:
		delete(loggedIn, m.Volume)
		return nil
	case MsgRead:
		if !loggedIn[m.Volume] {
			return &Msg{Type: MsgReadResp, Tag: m.Tag, Status: StatusNotLoggedIn}
		}
		vol := volumes[m.Volume]
		if vol == nil {
			return &Msg{Type: MsgReadResp, Tag: m.Tag, Status: StatusNoVolume}
		}
		var resp *Msg
		vol.ReadAt(int64(m.Offset), int(m.Length), func(data []byte, err error) {
			resp = &Msg{Type: MsgReadResp, Tag: m.Tag, Data: data}
			if err != nil {
				resp.Status = StatusIOError
				resp.Data = nil
			}
		})
		return resp
	case MsgWrite:
		if !loggedIn[m.Volume] {
			return &Msg{Type: MsgWriteResp, Tag: m.Tag, Status: StatusNotLoggedIn}
		}
		vol := volumes[m.Volume]
		if vol == nil {
			return &Msg{Type: MsgWriteResp, Tag: m.Tag, Status: StatusNoVolume}
		}
		var resp *Msg
		vol.WriteAt(int64(m.Offset), m.Data, func(err error) {
			resp = &Msg{Type: MsgWriteResp, Tag: m.Tag}
			if err != nil {
				resp.Status = StatusIOError
			}
		})
		return resp
	default:
		return nil
	}
}

// Client is a synchronous UBLK client over a real net.Conn.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	buf     []byte
	tmp     []byte
	nextTag uint64
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, tmp: make([]byte, 64*1024)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(m *Msg) (*Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextTag++
	m.Tag = c.nextTag
	if _, err := c.conn.Write(m.Encode()); err != nil {
		return nil, fmt.Errorf("writing %s: %w", m.Type, err)
	}
	for {
		resp, consumed, err := Decode(c.buf)
		if err == nil {
			c.buf = c.buf[consumed:]
			if resp.Tag != m.Tag {
				continue // stale frame
			}
			return resp, nil
		}
		if err != ErrTruncated {
			return nil, fmt.Errorf("decoding reply: %w", err)
		}
		n, rerr := c.conn.Read(c.tmp)
		if n > 0 {
			c.buf = append(c.buf, c.tmp[:n]...)
			continue
		}
		if rerr != nil {
			return nil, fmt.Errorf("reading reply: %w", rerr)
		}
	}
}

// Login opens a session and returns the volume size.
func (c *Client) Login(volume string) (int64, error) {
	resp, err := c.roundTrip(&Msg{Type: MsgLogin, Volume: volume})
	if err != nil {
		return 0, err
	}
	if e := resp.Status.Err(); e != nil {
		return 0, e
	}
	return int64(resp.Size), nil
}

// Read reads length bytes at off.
func (c *Client) Read(volume string, off int64, length int) ([]byte, error) {
	resp, err := c.roundTrip(&Msg{Type: MsgRead, Volume: volume, Offset: uint64(off), Length: uint32(length)})
	if err != nil {
		return nil, err
	}
	if e := resp.Status.Err(); e != nil {
		return nil, e
	}
	return resp.Data, nil
}

// Write writes data at off.
func (c *Client) Write(volume string, off int64, data []byte) error {
	resp, err := c.roundTrip(&Msg{Type: MsgWrite, Volume: volume, Offset: uint64(off), Data: data})
	if err != nil {
		return err
	}
	return resp.Status.Err()
}
