// Package block implements the network block protocol UStore EndPoints use
// to expose disk storage to clients (§IV-B chooses iSCSI; we implement an
// iSCSI-like protocol, "UBLK", with a real binary wire format).
//
// The protocol is a simple request/response PDU stream: a client logs in to
// a named volume exported by a Target, then issues bounded reads and writes
// by offset. PDUs carry a tag so multiple commands can be in flight. The
// codec is transport-agnostic: the same bytes travel over the simulated
// network (simnet) or a real net.Conn (see ServeConn/DialConn).
package block

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic starts every PDU.
const Magic uint32 = 0x55424C4B // "UBLK"

// MsgType enumerates PDU types.
type MsgType uint8

// PDU types.
const (
	MsgLogin MsgType = iota + 1
	MsgLoginResp
	MsgRead
	MsgReadResp
	MsgWrite
	MsgWriteResp
	MsgLogout
)

// String names the PDU type.
func (t MsgType) String() string {
	names := []string{"", "login", "login-resp", "read", "read-resp", "write", "write-resp", "logout"}
	if int(t) < len(names) && t > 0 {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Status codes carried in responses.
type Status uint8

// Response statuses.
const (
	StatusOK Status = iota
	StatusNoVolume
	StatusIOError
	StatusOutOfRange
	StatusNotLoggedIn
	// StatusChecksum means the target read the blocks but their content
	// failed CRC verification — the medium silently corrupted the data.
	StatusChecksum
)

// String names the status.
func (s Status) String() string {
	names := []string{"ok", "no-volume", "io-error", "out-of-range", "not-logged-in", "checksum"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Err converts a non-OK status to an error (nil for StatusOK). A checksum
// status wraps ErrChecksum so callers can errors.Is across the wire.
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	if s == StatusChecksum {
		return fmt.Errorf("%w (remote)", ErrChecksum)
	}
	return fmt.Errorf("block: %s", s)
}

// Msg is the decoded form of a PDU.
type Msg struct {
	Type   MsgType
	Tag    uint64
	Status Status
	// Volume names the export (login).
	Volume string
	// Offset/Length address the IO (read/write).
	Offset uint64
	Length uint32
	// Size is the volume size (login-resp).
	Size uint64
	// Data carries write payloads and read results.
	Data []byte
}

// header layout: magic(4) type(1) status(1) pad(2) tag(8) bodyLen(4) = 20B.
const headerLen = 20

// MaxBody bounds a PDU body (sanity check against corrupt streams).
const MaxBody = 64 << 20

// Errors returned by the codec.
var (
	// ErrBadMagic is returned when a frame does not start with Magic.
	ErrBadMagic = errors.New("block: bad magic")
	// ErrTruncated is returned for short frames.
	ErrTruncated = errors.New("block: truncated PDU")
	// ErrBodyTooLarge guards against absurd lengths.
	ErrBodyTooLarge = errors.New("block: body too large")
)

// bodyLen returns the encoded body size of m, so Encode can size the frame
// up front and serialize in a single allocation.
func (m *Msg) bodyLen() int {
	switch m.Type {
	case MsgLogin, MsgLogout:
		return 2 + len(m.Volume)
	case MsgLoginResp:
		return 8
	case MsgRead:
		return 2 + len(m.Volume) + 12
	case MsgReadResp:
		return len(m.Data)
	case MsgWrite:
		return 2 + len(m.Volume) + 8 + len(m.Data)
	default:
		return 0
	}
}

// Encode serializes m to wire bytes. The frame is built in one allocation:
// header and body are written directly into the output buffer, so a 64KB
// write payload is copied exactly once on its way to the wire.
func (m *Msg) Encode() []byte {
	bl := m.bodyLen()
	out := make([]byte, headerLen+bl)
	binary.BigEndian.PutUint32(out[0:], Magic)
	out[4] = byte(m.Type)
	out[5] = byte(m.Status)
	binary.BigEndian.PutUint64(out[8:], m.Tag)
	binary.BigEndian.PutUint32(out[16:], uint32(bl))
	b := out[headerLen:]
	switch m.Type {
	case MsgLogin, MsgLogout:
		binary.BigEndian.PutUint16(b, uint16(len(m.Volume)))
		copy(b[2:], m.Volume)
	case MsgLoginResp:
		binary.BigEndian.PutUint64(b, m.Size)
	case MsgRead:
		binary.BigEndian.PutUint16(b, uint16(len(m.Volume)))
		copy(b[2:], m.Volume)
		p := 2 + len(m.Volume)
		binary.BigEndian.PutUint64(b[p:], m.Offset)
		binary.BigEndian.PutUint32(b[p+8:], m.Length)
	case MsgReadResp:
		copy(b, m.Data)
	case MsgWrite:
		binary.BigEndian.PutUint16(b, uint16(len(m.Volume)))
		copy(b[2:], m.Volume)
		p := 2 + len(m.Volume)
		binary.BigEndian.PutUint64(b[p:], m.Offset)
		copy(b[p+8:], m.Data)
	}
	return out
}

// Decode parses one PDU from buf, returning the message and bytes consumed.
// It returns ErrTruncated if buf does not hold a complete PDU yet.
//
// For payload-carrying PDUs (read-resp, write) the returned Msg.Data aliases
// buf rather than copying it: both transports hand Decode frames whose bytes
// are never rewritten afterwards (simnet delivers freshly encoded buffers;
// the net.Conn framers only append past, and re-slice away from, consumed
// frames). Callers that retain Data beyond the life of buf must copy it.
func Decode(buf []byte) (*Msg, int, error) {
	if len(buf) < headerLen {
		return nil, 0, ErrTruncated
	}
	if binary.BigEndian.Uint32(buf) != Magic {
		return nil, 0, ErrBadMagic
	}
	bodyLen := binary.BigEndian.Uint32(buf[16:])
	if bodyLen > MaxBody {
		return nil, 0, fmt.Errorf("%w: %d", ErrBodyTooLarge, bodyLen)
	}
	total := headerLen + int(bodyLen)
	if len(buf) < total {
		return nil, 0, ErrTruncated
	}
	m := &Msg{
		Type:   MsgType(buf[4]),
		Status: Status(buf[5]),
		Tag:    binary.BigEndian.Uint64(buf[8:]),
	}
	body := buf[headerLen:total]
	if err := m.decodeBody(body); err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

func (m *Msg) decodeBody(body []byte) error {
	switch m.Type {
	case MsgLogin:
		if len(body) < 2 {
			return ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) < 2+n {
			return ErrTruncated
		}
		m.Volume = string(body[2 : 2+n])
	case MsgLoginResp:
		if len(body) < 8 {
			return ErrTruncated
		}
		m.Size = binary.BigEndian.Uint64(body)
	case MsgRead:
		name, rest, err := decodeName(body)
		if err != nil {
			return err
		}
		if len(rest) < 12 {
			return ErrTruncated
		}
		m.Volume = name
		m.Offset = binary.BigEndian.Uint64(rest)
		m.Length = binary.BigEndian.Uint32(rest[8:])
	case MsgReadResp:
		m.Data = body
	case MsgWrite:
		name, rest, err := decodeName(body)
		if err != nil {
			return err
		}
		if len(rest) < 8 {
			return ErrTruncated
		}
		m.Volume = name
		m.Offset = binary.BigEndian.Uint64(rest)
		m.Data = rest[8:]
	case MsgLogout:
		name, _, err := decodeName(body)
		if err != nil {
			return err
		}
		m.Volume = name
	case MsgWriteResp:
	default:
		return fmt.Errorf("block: unknown PDU type %d", m.Type)
	}
	return nil
}

// decodeName parses a u16-length-prefixed string, returning the remainder.
func decodeName(body []byte) (string, []byte, error) {
	if len(body) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(body))
	if len(body) < 2+n {
		return "", nil, ErrTruncated
	}
	return string(body[2 : 2+n]), body[2+n:], nil
}
