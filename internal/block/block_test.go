package block

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"ustore/internal/disk"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// --- Codec ---

func TestCodecRoundTripAllTypes(t *testing.T) {
	msgs := []*Msg{
		{Type: MsgLogin, Tag: 1, Volume: "unit0/disk03/sp1"},
		{Type: MsgLoginResp, Tag: 1, Size: 3_000_000_000_000},
		{Type: MsgLoginResp, Tag: 2, Status: StatusNoVolume},
		{Type: MsgRead, Tag: 3, Volume: "v", Offset: 1 << 40, Length: 4096},
		{Type: MsgReadResp, Tag: 3, Data: []byte("payload")},
		{Type: MsgReadResp, Tag: 4, Status: StatusIOError},
		{Type: MsgWrite, Tag: 5, Volume: "v", Offset: 42, Data: []byte{1, 2, 3}},
		{Type: MsgWriteResp, Tag: 5},
		{Type: MsgLogout, Tag: 6, Volume: "v"},
	}
	for _, m := range msgs {
		buf := m.Encode()
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: consumed %d of %d", m.Type, n, len(buf))
		}
		if got.Type != m.Type || got.Tag != m.Tag || got.Status != m.Status ||
			got.Volume != m.Volume || got.Offset != m.Offset || got.Length != m.Length ||
			got.Size != m.Size || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("%s: round trip %+v -> %+v", m.Type, m, got)
		}
	}
}

func TestCodecStreamed(t *testing.T) {
	// Two PDUs concatenated decode one at a time with correct consumption.
	a := (&Msg{Type: MsgRead, Tag: 1, Volume: "v", Offset: 0, Length: 512}).Encode()
	b := (&Msg{Type: MsgWrite, Tag: 2, Volume: "v", Offset: 512, Data: []byte("xy")}).Encode()
	stream := append(append([]byte{}, a...), b...)
	m1, n1, err := Decode(stream)
	if err != nil || m1.Tag != 1 {
		t.Fatalf("first: %v %+v", err, m1)
	}
	m2, n2, err := Decode(stream[n1:])
	if err != nil || m2.Tag != 2 {
		t.Fatalf("second: %v %+v", err, m2)
	}
	if n1+n2 != len(stream) {
		t.Fatalf("consumed %d, want %d", n1+n2, len(stream))
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short buf err = %v", err)
	}
	bad := (&Msg{Type: MsgLogin, Volume: "v"}).Encode()
	bad[0] = 0xFF
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v", err)
	}
	huge := (&Msg{Type: MsgLogin, Volume: "v"}).Encode()
	huge[16] = 0xFF
	huge[17] = 0xFF
	huge[18] = 0xFF
	huge[19] = 0xFF
	if _, _, err := Decode(huge); !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("huge body err = %v", err)
	}
	partial := (&Msg{Type: MsgWrite, Volume: "v", Data: make([]byte, 100)}).Encode()
	if _, _, err := Decode(partial[:len(partial)-10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("partial err = %v", err)
	}
}

// Property: any message round-trips through the codec unchanged.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(tag uint64, volRaw []byte, offset uint64, length uint32, data []byte, typeSel uint8) bool {
		if len(volRaw) > 1000 {
			volRaw = volRaw[:1000]
		}
		vol := string(volRaw)
		types := []MsgType{MsgLogin, MsgRead, MsgWrite, MsgReadResp, MsgLogout}
		m := &Msg{Type: types[int(typeSel)%len(types)], Tag: tag, Volume: vol, Offset: offset, Length: length, Data: data}
		switch m.Type {
		case MsgLogin, MsgLogout:
			m.Offset, m.Length, m.Data = 0, 0, nil
		case MsgRead:
			m.Data = nil
		case MsgReadResp:
			m.Volume, m.Offset, m.Length = "", 0, 0
		case MsgWrite:
			m.Length = 0
		}
		buf := m.Encode()
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.Type == m.Type && got.Tag == m.Tag && got.Volume == m.Volume &&
			got.Offset == m.Offset && got.Length == m.Length && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// --- Target/Initiator over simnet ---

type simRig struct {
	sched *simtime.Scheduler
	net   *simnet.Network
	tgt   *Target
	ini   *Initiator
	d     *disk.Disk
}

func newSimRig(t *testing.T) *simRig {
	t.Helper()
	s := simtime.NewScheduler(1)
	n := simnet.New(s)
	r := &simRig{
		sched: s,
		net:   n,
		tgt:   NewTarget(n, "h1"),
		ini:   NewInitiator(n, "client1"),
		d:     disk.New(s, "disk00", disk.DT01ACA300(), disk.AttachFabric),
	}
	r.d.SpinUp()
	s.Run()
	vol, err := NewDiskVolume(r.d, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	r.tgt.Export("unit0/disk00/sp0", vol)
	return r
}

func TestLoginReadWrite(t *testing.T) {
	r := newSimRig(t)
	var size int64
	r.ini.Login("h1", "unit0/disk00/sp0", func(sz int64, err error) {
		if err != nil {
			t.Errorf("login: %v", err)
		}
		size = sz
	})
	r.sched.Run()
	if size != 1<<30 {
		t.Fatalf("size = %d", size)
	}
	payload := []byte("archival block")
	var read []byte
	r.ini.Write("h1", "unit0/disk00/sp0", 4096, payload, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
			return
		}
		r.ini.Read("h1", "unit0/disk00/sp0", 4096, len(payload), func(data []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			read = data
		})
	})
	r.sched.Run()
	if !bytes.Equal(read, payload) {
		t.Fatalf("read %q, want %q", read, payload)
	}
	if r.tgt.Reads() != 1 || r.tgt.Writes() != 1 {
		t.Fatalf("counters: r=%d w=%d", r.tgt.Reads(), r.tgt.Writes())
	}
}

func TestIOWithoutLogin(t *testing.T) {
	r := newSimRig(t)
	var gotErr error
	r.ini.Read("h1", "unit0/disk00/sp0", 0, 512, func(_ []byte, err error) { gotErr = err })
	r.sched.Run()
	if gotErr == nil {
		t.Fatal("read without login succeeded")
	}
}

func TestLoginUnknownVolume(t *testing.T) {
	r := newSimRig(t)
	var gotErr error
	r.ini.Login("h1", "nope", func(_ int64, err error) { gotErr = err })
	r.sched.Run()
	if gotErr == nil {
		t.Fatal("login to unknown volume succeeded")
	}
}

func TestRevokedVolumeFailsIO(t *testing.T) {
	r := newSimRig(t)
	r.ini.Login("h1", "unit0/disk00/sp0", func(int64, error) {})
	r.sched.Run()
	r.tgt.Revoke("unit0/disk00/sp0")
	var gotErr error
	r.ini.Read("h1", "unit0/disk00/sp0", 0, 512, func(_ []byte, err error) { gotErr = err })
	r.sched.Run()
	if gotErr == nil {
		t.Fatal("IO to revoked volume succeeded")
	}
}

func TestTargetDownTimesOut(t *testing.T) {
	r := newSimRig(t)
	r.ini.Login("h1", "unit0/disk00/sp0", func(int64, error) {})
	r.sched.Run()
	r.tgt.Down(true)
	var gotErr error
	var doneAt simtime.Time
	r.ini.Read("h1", "unit0/disk00/sp0", 0, 512, func(_ []byte, err error) {
		gotErr = err
		doneAt = r.sched.Now()
	})
	start := r.sched.Now()
	r.sched.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if doneAt-start != r.ini.Timeout {
		t.Fatalf("timed out after %v, want %v", doneAt-start, r.ini.Timeout)
	}
}

func TestIOOutOfVolumeBounds(t *testing.T) {
	r := newSimRig(t)
	r.ini.Login("h1", "unit0/disk00/sp0", func(int64, error) {})
	r.sched.Run()
	var gotErr error
	r.ini.Read("h1", "unit0/disk00/sp0", 1<<30-100, 512, func(_ []byte, err error) { gotErr = err })
	r.sched.Run()
	if gotErr == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
}

func TestVolumeIsolation(t *testing.T) {
	// Two volumes on one disk must not see each other's data.
	r := newSimRig(t)
	v1, _ := NewDiskVolume(r.d, 1<<30, 1<<20)
	r.tgt.Export("sp1", v1)
	r.ini.Login("h1", "unit0/disk00/sp0", func(int64, error) {})
	r.ini.Login("h1", "sp1", func(int64, error) {})
	r.sched.Run()
	r.ini.Write("h1", "sp1", 0, []byte("vol1data"), func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	r.sched.Run()
	var sp0 []byte
	r.ini.Read("h1", "unit0/disk00/sp0", 0, 8, func(data []byte, err error) { sp0 = data })
	r.sched.Run()
	if !bytes.Equal(sp0, make([]byte, 8)) {
		t.Fatalf("volume 0 sees volume 1's data: %q", sp0)
	}
}

func TestDiskVolumePatternClassification(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := disk.New(s, "d", disk.DT01ACA300(), disk.AttachSATA)
	d.SpinUp()
	s.Run()
	v, _ := NewDiskVolume(d, 0, 1<<30)
	// Sequential stream: 3 contiguous reads after the first.
	for i := 0; i < 4; i++ {
		v.ReadAt(int64(i)*4096, 4096, func([]byte, error) {})
	}
	s.Run()
	seqBusy := d.BusyTime()
	// Random positions cost much more.
	d2 := disk.New(s, "d2", disk.DT01ACA300(), disk.AttachSATA)
	d2.SpinUp()
	s.Run()
	v2, _ := NewDiskVolume(d2, 0, 1<<30)
	offs := []int64{0, 1 << 25, 1 << 20, 1 << 28}
	for _, off := range offs {
		v2.ReadAt(off, 4096, func([]byte, error) {})
	}
	s.Run()
	randBusy := d2.BusyTime()
	// The sequential stream's first op is classified random (no prior
	// position), so compare with margin rather than a strict ratio.
	if randBusy < seqBusy*3 {
		t.Fatalf("random busy %v not >> sequential busy %v", randBusy, seqBusy)
	}
}

// --- Real net.Conn transport ---

func TestServeConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	vols := map[string]Volume{"mem0": NewMemVolume(1 << 20)}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = ServeConn(conn, vols)
	}()
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	defer cli.Close()
	size, err := cli.Login("mem0")
	if err != nil || size != 1<<20 {
		t.Fatalf("login: size=%d err=%v", size, err)
	}
	payload := bytes.Repeat([]byte("tcp"), 1000)
	if err := cli.Write("mem0", 512, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := cli.Read("mem0", 512, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read: err=%v match=%v", err, bytes.Equal(got, payload))
	}
	if _, err := cli.Login("ghost"); err == nil {
		t.Fatal("login to ghost volume succeeded")
	}
	if _, err := cli.Read("ghost", 0, 16); err == nil {
		t.Fatal("read without login succeeded over TCP")
	}
}
