package block

import (
	"errors"
	"fmt"

	"ustore/internal/disk"
)

// Volume is the storage a Target exports: a whole disk, a partition, or a
// big file on a disk — the three allocation granularities §IV-B mentions.
// IO is asynchronous; done runs on the simulation scheduler.
type Volume interface {
	// Size returns the volume size in bytes.
	Size() int64
	// ReadAt reads length bytes from off.
	ReadAt(off int64, length int, done func(data []byte, err error))
	// WriteAt writes data at off.
	WriteAt(off int64, data []byte, done func(err error))
}

// ErrVolumeRange is returned for IO outside the volume bounds.
var ErrVolumeRange = errors.New("block: io outside volume")

// DiskVolume exposes a byte range of a simulated disk as a Volume. It
// classifies each IO as sequential or random from the previous IO's end
// offset, so the disk model charges realistic positioning time.
type DiskVolume struct {
	d       *disk.Disk
	base    int64
	size    int64
	nextSeq int64 // expected next offset for a sequential classification
}

// NewDiskVolume exports d's range [base, base+size).
func NewDiskVolume(d *disk.Disk, base, size int64) (*DiskVolume, error) {
	if base < 0 || size <= 0 || base+size > d.Capacity() {
		return nil, fmt.Errorf("block: volume [%d,+%d) outside disk %s capacity %d",
			base, size, d.ID(), d.Capacity())
	}
	return &DiskVolume{d: d, base: base, size: size, nextSeq: -1}, nil
}

// Disk returns the backing disk.
func (v *DiskVolume) Disk() *disk.Disk { return v.d }

// Size implements Volume.
func (v *DiskVolume) Size() int64 { return v.size }

func (v *DiskVolume) classify(off int64, length int) disk.Pattern {
	pat := disk.Random
	if off == v.nextSeq {
		pat = disk.Sequential
	}
	v.nextSeq = off + int64(length)
	return pat
}

// ReadAt implements Volume.
func (v *DiskVolume) ReadAt(off int64, length int, done func([]byte, error)) {
	if off < 0 || length <= 0 || off+int64(length) > v.size {
		done(nil, fmt.Errorf("%w: read [%d,+%d) size %d", ErrVolumeRange, off, length, v.size))
		return
	}
	v.d.Submit(&disk.Request{
		Op:     disk.Op{Read: true, Size: length, Pattern: v.classify(off, length)},
		Offset: v.base + off,
		Done:   done,
	})
}

// WriteAt implements Volume.
func (v *DiskVolume) WriteAt(off int64, data []byte, done func(error)) {
	if off < 0 || len(data) == 0 || off+int64(len(data)) > v.size {
		done(fmt.Errorf("%w: write [%d,+%d) size %d", ErrVolumeRange, off, len(data), v.size))
		return
	}
	v.d.Submit(&disk.Request{
		Op:     disk.Op{Read: false, Size: len(data), Pattern: v.classify(off, len(data))},
		Offset: v.base + off,
		Data:   data,
		Done:   func(_ []byte, err error) { done(err) },
	})
}

// MemVolume is a synchronous in-memory Volume for protocol tests and the
// real-net.Conn transport (no scheduler involved).
type MemVolume struct {
	buf []byte
}

// NewMemVolume allocates a zeroed in-memory volume.
func NewMemVolume(size int64) *MemVolume { return &MemVolume{buf: make([]byte, size)} }

// Size implements Volume.
func (v *MemVolume) Size() int64 { return int64(len(v.buf)) }

// ReadAt implements Volume.
func (v *MemVolume) ReadAt(off int64, length int, done func([]byte, error)) {
	if off < 0 || length <= 0 || off+int64(length) > int64(len(v.buf)) {
		done(nil, ErrVolumeRange)
		return
	}
	out := make([]byte, length)
	copy(out, v.buf[off:])
	done(out, nil)
}

// WriteAt implements Volume.
func (v *MemVolume) WriteAt(off int64, data []byte, done func(error)) {
	if off < 0 || off+int64(len(data)) > int64(len(v.buf)) {
		done(ErrVolumeRange)
		return
	}
	copy(v.buf[off:], data)
	done(nil)
}

var (
	_ Volume = (*DiskVolume)(nil)
	_ Volume = (*MemVolume)(nil)
)
