package block

import (
	"bytes"
	"errors"
	"testing"

	"ustore/internal/disk"
	"ustore/internal/simtime"
)

func newChecksumVolume(t *testing.T, base, size int64) (*simtime.Scheduler, *disk.Disk, *ChecksumDiskVolume) {
	t.Helper()
	s := simtime.NewScheduler(1)
	d := disk.New(s, "d0", disk.DT01ACA300(), disk.AttachSATA)
	d.SpinUp()
	s.Run()
	v, err := NewChecksumDiskVolume(d, base, size)
	if err != nil {
		t.Fatal(err)
	}
	return s, d, v
}

func TestChecksumVolumeRoundTrip(t *testing.T) {
	s, _, v := newChecksumVolume(t, 0, 1<<20)
	payload := bytes.Repeat([]byte{0xCD}, 8192)
	var werr error = errors.New("pending")
	v.WriteAt(4096, payload, func(err error) { werr = err })
	s.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	var rerr error = errors.New("pending")
	v.ReadAt(4096, 8192, func(data []byte, err error) { got, rerr = data, err })
	s.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestChecksumVolumeDetectsSilentCorruption(t *testing.T) {
	s, d, v := newChecksumVolume(t, 0, 1<<20)
	payload := bytes.Repeat([]byte{0xEE}, 8192)
	v.WriteAt(0, payload, func(err error) {})
	s.Run()

	// Rot a sector behind the volume's back: the plain read path would
	// happily return the damaged bytes.
	d.Store().CorruptAt(100, 16, 0x40)

	var rerr error
	v.ReadAt(0, 8192, func(_ []byte, err error) { rerr = err })
	s.Run()
	if !errors.Is(rerr, ErrChecksum) {
		t.Fatalf("read error = %v, want ErrChecksum", rerr)
	}

	// A rewrite of the damaged blocks re-establishes the CRC.
	v.WriteAt(0, payload, func(err error) {})
	s.Run()
	var got []byte
	v.ReadAt(0, 8192, func(data []byte, err error) { got, rerr = data, err })
	s.Run()
	if rerr != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after repair: %v", rerr)
	}
}

func TestChecksumVolumeUnwrittenBlocksPassUnverified(t *testing.T) {
	s, d, v := newChecksumVolume(t, 0, 1<<20)
	// No write ever happened; even a corrupted hole reads back without a
	// checksum error (no CRC on record — like a fresh drive).
	d.Store().CorruptAt(0, 8, 0x01)
	var rerr error = errors.New("pending")
	v.ReadAt(0, 4096, func(_ []byte, err error) { rerr = err })
	s.Run()
	if rerr != nil {
		t.Fatalf("read of unverifiable block failed: %v", rerr)
	}
}

func TestChecksumVolumeCRCsSurviveBaseOffsets(t *testing.T) {
	// Two packed volumes on one disk share a boundary block; CRCs cover
	// absolute store content so each volume's writes keep the shared block
	// consistent for the other.
	s, d, v1 := newChecksumVolume(t, 0, 96*1024)
	v2, err := NewChecksumDiskVolume(d, 96*1024, 96*1024)
	if err != nil {
		t.Fatal(err)
	}
	v1.WriteAt(0, bytes.Repeat([]byte{1}, 96*1024), func(error) {})
	s.Run()
	v2.WriteAt(0, bytes.Repeat([]byte{2}, 96*1024), func(error) {})
	s.Run()
	for i, v := range []*ChecksumDiskVolume{v1, v2} {
		var rerr error = errors.New("pending")
		v.ReadAt(0, 96*1024, func(_ []byte, err error) { rerr = err })
		s.Run()
		if rerr != nil {
			t.Fatalf("volume %d read: %v", i, rerr)
		}
	}
}

func TestStatusChecksumErrMapsToErrChecksum(t *testing.T) {
	if !errors.Is(StatusChecksum.Err(), ErrChecksum) {
		t.Fatal("StatusChecksum.Err() does not wrap ErrChecksum")
	}
	if StatusOK.Err() != nil {
		t.Fatal("StatusOK.Err() != nil")
	}
}
