package block

import (
	"errors"

	"ustore/internal/simnet"
)

// Target serves UBLK PDUs on a simnet node — the iSCSI-target role an
// EndPoint plays for the disks currently attached to its host (§IV-B).
// Volumes are exported and revoked dynamically as the fabric moves disks.
type Target struct {
	node    *simnet.Node
	volumes map[string]Volume
	// sessions tracks which (client, volume) pairs are logged in.
	sessions map[string]map[string]bool

	// Stats.
	reads, writes uint64
}

// TargetNode derives the simnet node name a host's target listens on.
func TargetNode(host string) string { return "blk:" + host }

// NewTarget creates the block target for host on net. It shares the
// process's scheduler; all handlers run as simulation events.
func NewTarget(net *simnet.Network, host string) *Target {
	t := &Target{
		node:     net.Node(TargetNode(host)),
		volumes:  make(map[string]Volume),
		sessions: make(map[string]map[string]bool),
	}
	t.node.Handle(t.onMessage)
	return t
}

// Export publishes vol under name. Re-exporting replaces the volume.
func (t *Target) Export(name string, vol Volume) { t.volumes[name] = vol }

// Revoke removes an export; logged-in clients get StatusNoVolume on
// subsequent IO (what a client sees when its disk was switched away).
func (t *Target) Revoke(name string) { delete(t.volumes, name) }

// Exports lists exported volume names (unsorted).
func (t *Target) Exports() []string {
	var out []string
	for name := range t.volumes {
		out = append(out, name)
	}
	return out
}

// Reads and Writes return served-IO counters.
func (t *Target) Reads() uint64  { return t.reads }
func (t *Target) Writes() uint64 { return t.writes }

// Down makes the target unreachable (host crash) or reachable again.
func (t *Target) Down(down bool) { t.node.SetDown(down) }

func (t *Target) onMessage(msg simnet.Message) {
	raw, ok := msg.Payload.([]byte)
	if !ok {
		return
	}
	m, _, err := Decode(raw)
	if err != nil {
		return // corrupt frame: drop, client times out
	}
	reply := t.serve(msg.From, m)
	if reply != nil {
		buf := reply.Encode()
		t.node.Send(msg.From, buf, len(buf))
	}
}

func (t *Target) serve(from string, m *Msg) *Msg {
	switch m.Type {
	case MsgLogin:
		vol, ok := t.volumes[m.Volume]
		if !ok {
			return &Msg{Type: MsgLoginResp, Tag: m.Tag, Status: StatusNoVolume}
		}
		sess := t.sessions[from]
		if sess == nil {
			sess = make(map[string]bool)
			t.sessions[from] = sess
		}
		sess[m.Volume] = true
		return &Msg{Type: MsgLoginResp, Tag: m.Tag, Size: uint64(vol.Size())}
	case MsgLogout:
		delete(t.sessions[from], m.Volume)
		return nil
	case MsgRead:
		vol, status := t.volumeFor(from, m.Volume)
		if status != StatusOK {
			return &Msg{Type: MsgReadResp, Tag: m.Tag, Status: status}
		}
		tag := m.Tag
		vol.ReadAt(int64(m.Offset), int(m.Length), func(data []byte, err error) {
			resp := &Msg{Type: MsgReadResp, Tag: tag, Data: data}
			if err != nil {
				resp.Status = StatusIOError
				if errors.Is(err, ErrChecksum) {
					resp.Status = StatusChecksum
				}
				resp.Data = nil
			}
			buf := resp.Encode()
			t.node.Send(from, buf, len(buf))
		})
		t.reads++
		return nil
	case MsgWrite:
		vol, status := t.volumeFor(from, m.Volume)
		if status != StatusOK {
			return &Msg{Type: MsgWriteResp, Tag: m.Tag, Status: status}
		}
		tag := m.Tag
		vol.WriteAt(int64(m.Offset), m.Data, func(err error) {
			resp := &Msg{Type: MsgWriteResp, Tag: tag}
			if err != nil {
				resp.Status = StatusIOError
			}
			buf := resp.Encode()
			t.node.Send(from, buf, len(buf))
		})
		t.writes++
		return nil
	default:
		return nil
	}
}

// volumeFor resolves an IO's volume, requiring a prior login. The IO PDUs
// carry the volume name in Msg.Volume for simplicity (real iSCSI binds a
// session to one target; we multiplex).
func (t *Target) volumeFor(from, name string) (Volume, Status) {
	if name == "" {
		return nil, StatusNoVolume
	}
	if !t.sessions[from][name] {
		return nil, StatusNotLoggedIn
	}
	vol, ok := t.volumes[name]
	if !ok {
		return nil, StatusNoVolume
	}
	return vol, StatusOK
}
