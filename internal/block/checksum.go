package block

import (
	"errors"
	"fmt"

	"ustore/internal/disk"
)

// ErrChecksum is returned when a read's content does not match the CRC the
// volume recorded at write time — the medium silently corrupted the data.
var ErrChecksum = errors.New("block: checksum mismatch")

// ChecksumBlockSize is the verification granularity. It equals the sparse
// store's chunk size so a block's CRC keys directly into the per-disk
// sidecar and stays valid across host failover (the sidecar travels with
// the platters).
const ChecksumBlockSize = disk.ChunkSize

// ChecksumDiskVolume wraps a DiskVolume with per-block CRC32 end-to-end
// verification. CRCs cover absolute disk blocks (not volume-relative
// ranges): every acknowledged write re-checksums the touched blocks from
// the medium, every read verifies them, and ErrChecksum surfaces silent
// corruption that a plain DiskVolume would return as good data. Blocks no
// write has ever covered carry no CRC and pass unverified (a fresh drive
// has no ECC history either).
type ChecksumDiskVolume struct {
	*DiskVolume
}

// NewChecksumDiskVolume exports d's range [base, base+size) with CRC
// verification.
func NewChecksumDiskVolume(d *disk.Disk, base, size int64) (*ChecksumDiskVolume, error) {
	inner, err := NewDiskVolume(d, base, size)
	if err != nil {
		return nil, err
	}
	return &ChecksumDiskVolume{DiskVolume: inner}, nil
}

// blockRange returns the first and last absolute block index covered by the
// volume-relative extent [off, off+length).
func (v *ChecksumDiskVolume) blockRange(off int64, length int) (int64, int64) {
	abs := v.base + off
	return abs / ChecksumBlockSize, (abs + int64(length) - 1) / ChecksumBlockSize
}

// WriteAt implements Volume. After the disk acknowledges the write, the
// CRCs of all touched blocks are refreshed from the medium. The sidecar
// update models the drive's ECC area being rewritten with the sector: it is
// metadata maintenance, not extra platter IO, so it reads the store
// directly.
func (v *ChecksumDiskVolume) WriteAt(off int64, data []byte, done func(error)) {
	length := len(data)
	v.DiskVolume.WriteAt(off, data, func(err error) {
		if err == nil {
			st := v.d.Store()
			first, last := v.blockRange(off, length)
			for b := first; b <= last; b++ {
				st.SetBlockCRC(b, st.ChunkCRC(b))
			}
		}
		done(err)
	})
}

// ReadAt implements Volume. After the disk returns data, every covered
// block that has a recorded CRC is verified against the medium; a mismatch
// fails the read with ErrChecksum instead of returning rotten bytes.
func (v *ChecksumDiskVolume) ReadAt(off int64, length int, done func([]byte, error)) {
	v.DiskVolume.ReadAt(off, length, func(data []byte, err error) {
		if err != nil {
			done(data, err)
			return
		}
		st := v.d.Store()
		first, last := v.blockRange(off, length)
		for b := first; b <= last; b++ {
			want, ok := st.BlockCRC(b)
			if !ok {
				continue
			}
			if got := st.ChunkCRC(b); got != want {
				done(nil, fmt.Errorf("%w: disk %s block %d (offset %d)",
					ErrChecksum, v.d.ID(), b, b*ChecksumBlockSize))
				return
			}
		}
		done(data, err)
	})
}

var _ Volume = (*ChecksumDiskVolume)(nil)
