package block

import (
	"errors"
	"fmt"
	"time"

	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// ErrTimeout is returned when a block request gets no reply in time (host
// crashed, disk switched away mid-flight).
var ErrTimeout = errors.New("block: request timeout")

// Initiator is the client side of the UBLK protocol over simnet — the
// piece the ClientLib uses to mount and access allocated storage. One
// Initiator serves one client node and may hold sessions to many targets.
type Initiator struct {
	node  *simnet.Node
	sched *simtime.Scheduler

	nextTag uint64
	pending map[uint64]*call

	// Timeout bounds each request (default 2s, enough for a spun-down
	// disk's spin-up; failover remounts retry above this layer).
	Timeout time.Duration
	// AdaptiveTimeout, when set, supplies a per-target base timeout that
	// replaces Timeout (the large-IO size allowance is still added on
	// top). The ClientLib's gray-failure mitigation derives it from
	// observed latency so a fail-slow target times out in hundreds of
	// milliseconds instead of the worst-case static deadline. The target
	// is (host, volume): gray failures are per disk, so two volumes on one
	// host must not share a deadline model.
	AdaptiveTimeout func(host, volume string) time.Duration
	// OnComplete, when set, observes every request's outcome (round-trip
	// time or timeout) — the mitigation layer's latency feed.
	OnComplete func(host, volume string, rtt time.Duration, err error)
}

type call struct {
	done    func(*Msg, error)
	timeout *simtime.Event
}

// NewInitiator creates a client endpoint named clientNode.
func NewInitiator(net *simnet.Network, clientNode string) *Initiator {
	ini := &Initiator{
		node:    net.Node(clientNode),
		sched:   net.Scheduler(),
		pending: make(map[uint64]*call),
		Timeout: 2 * time.Second,
	}
	ini.node.Handle(ini.onMessage)
	return ini
}

// NodeName returns the initiator's network name.
func (ini *Initiator) NodeName() string { return ini.node.Name() }

func (ini *Initiator) onMessage(msg simnet.Message) {
	raw, ok := msg.Payload.([]byte)
	if !ok {
		return
	}
	m, _, err := Decode(raw)
	if err != nil {
		return
	}
	c, ok := ini.pending[m.Tag]
	if !ok {
		return // late reply after timeout
	}
	delete(ini.pending, m.Tag)
	c.timeout.Cancel()
	c.done(m, nil)
}

func (ini *Initiator) send(host string, m *Msg, done func(*Msg, error)) {
	ini.nextTag++
	m.Tag = ini.nextTag
	if ini.OnComplete != nil {
		start := ini.sched.Now()
		volume := m.Volume
		inner := done
		done = func(reply *Msg, err error) {
			ini.OnComplete(host, volume, ini.sched.Now()-start, err)
			inner(reply, err)
		}
	}
	c := &call{done: done}
	timeout := ini.Timeout
	if ini.AdaptiveTimeout != nil {
		if t := ini.AdaptiveTimeout(host, m.Volume); t > 0 {
			timeout = t
		}
	}
	// Large IOs get proportionally more time on a 1GbE link.
	if n := len(m.Data); n > 0 {
		timeout += time.Duration(float64(n) / 50e6 * float64(time.Second))
	}
	tag := m.Tag
	c.timeout = ini.sched.After(timeout, func() {
		if _, ok := ini.pending[tag]; !ok {
			return
		}
		delete(ini.pending, tag)
		done(nil, fmt.Errorf("%w: %s to %s", ErrTimeout, m.Type, host))
	})
	ini.pending[tag] = c
	buf := m.Encode()
	ini.node.Send(TargetNode(host), buf, len(buf))
}

// Login opens a session to volume on host's target. done receives the
// volume size.
func (ini *Initiator) Login(host, volume string, done func(size int64, err error)) {
	ini.send(host, &Msg{Type: MsgLogin, Volume: volume}, func(m *Msg, err error) {
		if err != nil {
			done(0, err)
			return
		}
		if e := m.Status.Err(); e != nil {
			done(0, e)
			return
		}
		done(int64(m.Size), nil)
	})
}

// Read reads length bytes at off from a logged-in volume.
func (ini *Initiator) Read(host, volume string, off int64, length int, done func([]byte, error)) {
	ini.send(host, &Msg{Type: MsgRead, Volume: volume, Offset: uint64(off), Length: uint32(length)},
		func(m *Msg, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			if e := m.Status.Err(); e != nil {
				done(nil, e)
				return
			}
			done(m.Data, nil)
		})
}

// Write writes data at off to a logged-in volume.
func (ini *Initiator) Write(host, volume string, off int64, data []byte, done func(error)) {
	ini.send(host, &Msg{Type: MsgWrite, Volume: volume, Offset: uint64(off), Data: data},
		func(m *Msg, err error) {
			if err != nil {
				done(err)
				return
			}
			done(m.Status.Err())
		})
}

// Logout closes the session to volume (fire and forget).
func (ini *Initiator) Logout(host, volume string) {
	m := &Msg{Type: MsgLogout, Volume: volume}
	ini.nextTag++
	m.Tag = ini.nextTag
	buf := m.Encode()
	ini.node.Send(TargetNode(host), buf, len(buf))
}
