package block

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Decode never panics and never over-consumes, no matter what
// bytes arrive (a malicious or corrupt initiator must not crash a target).
func TestPropertyDecodeRobustness(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		m, n, err := Decode(raw)
		if err != nil {
			return true // rejecting garbage is correct
		}
		return m != nil && n > 0 && n <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a valid PDU either still decodes
// (to possibly different fields) or returns an error — never panics, and
// never decodes past the original frame boundary.
func TestPropertySingleByteCorruption(t *testing.T) {
	base := (&Msg{Type: MsgWrite, Tag: 42, Volume: "unit0/disk03/sp1",
		Offset: 123456, Data: []byte("some payload bytes")}).Encode()
	f := func(pos uint16, val byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		buf := append([]byte(nil), base...)
		buf[int(pos)%len(buf)] ^= val
		m, n, err := Decode(buf)
		if err != nil {
			return true
		}
		_ = m
		return n <= len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeBody drives the whole codec with arbitrary frames. The seed
// corpus covers every PDU type, including the zero-copy payload carriers
// (write, read-resp) whose Data aliases the input frame. Invariants:
//
//   - Decode never panics, whatever the bytes;
//   - a successful decode consumes at least a header and never more bytes
//     than it was given;
//   - aliased payloads stay inside the consumed frame;
//   - re-encoding the decoded message and decoding again reproduces the
//     same logical message (the codec is a projection: one round trip
//     reaches its fixed point).
//
// Run `go test -fuzz FuzzDecodeBody ./internal/block/` to explore; CI runs
// just the seed corpus as a regular test.
func FuzzDecodeBody(f *testing.F) {
	payload := bytes.Repeat([]byte{0xa5, 0x5a, 0x00, 0xff}, 64)
	seeds := []*Msg{
		{Type: MsgLogin, Tag: 1, Volume: "unit0/disk00/sp1"},
		{Type: MsgLoginResp, Tag: 1, Size: 1 << 30},
		{Type: MsgRead, Tag: 2, Volume: "unit0/disk00/sp1", Offset: 4096, Length: 65536},
		{Type: MsgReadResp, Tag: 2, Status: StatusOK, Data: payload},
		{Type: MsgReadResp, Tag: 3, Status: StatusChecksum},
		{Type: MsgWrite, Tag: 4, Volume: "v", Offset: 1 << 40, Data: payload},
		{Type: MsgWrite, Tag: 5, Volume: "", Offset: 0, Data: nil},
		{Type: MsgWriteResp, Tag: 4, Status: StatusOutOfRange},
		{Type: MsgLogout, Tag: 6, Volume: "unit0/disk00/sp1"},
	}
	for _, m := range seeds {
		f.Add(m.Encode())
	}
	// Malformed variants: bad magic, unknown type, overlong inner name,
	// truncation mid-payload, and a body-length lie.
	bad := seeds[5].Encode()
	bad[4] = 99
	f.Add(bad)
	lie := seeds[0].Encode()
	binary.BigEndian.PutUint16(lie[headerLen:], 60000)
	f.Add(lie)
	short := seeds[3].Encode()
	f.Add(short[:len(short)-7])
	wrongMagic := seeds[8].Encode()
	wrongMagic[0] ^= 0xff
	f.Add(wrongMagic)

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, n, err := Decode(raw)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned a non-nil message", err)
			}
			return
		}
		if n < headerLen || n > len(raw) {
			t.Fatalf("consumed %d bytes of %d (header is %d)", n, len(raw), headerLen)
		}
		if len(m.Data) > n-headerLen {
			t.Fatalf("decoded Data (%d bytes) larger than the consumed body (%d)", len(m.Data), n-headerLen)
		}
		re := m.Encode()
		m2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-encoded frame consumed %d of %d bytes", n2, len(re))
		}
		if m2.Type != m.Type || m2.Tag != m.Tag || m2.Status != m.Status ||
			m2.Volume != m.Volume || m2.Offset != m.Offset || m2.Length != m.Length ||
			m2.Size != m.Size || !bytes.Equal(m2.Data, m.Data) {
			t.Fatalf("round trip changed the message:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// A crafted frame whose inner name length exceeds the body must error, not
// slice out of range.
func TestCraftedOverlongNameLength(t *testing.T) {
	m := &Msg{Type: MsgLogin, Tag: 1, Volume: "abc"}
	buf := m.Encode()
	// Body starts at headerLen; first two bytes are the name length.
	binary.BigEndian.PutUint16(buf[headerLen:], 60000)
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("overlong name length accepted")
	}
}

// A frame claiming a huge body length but truncated must report
// ErrTruncated (stream accumulates more bytes) rather than erroring hard.
func TestClaimedBodyLongerThanBuffer(t *testing.T) {
	m := &Msg{Type: MsgWrite, Tag: 1, Volume: "v", Data: make([]byte, 64)}
	buf := m.Encode()
	binary.BigEndian.PutUint32(buf[16:], 1<<20) // claim 1MB body
	if _, _, err := Decode(buf); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated (waiting for more bytes)", err)
	}
}

// Garbage after the magic with a zero body length must not be accepted as
// a valid unknown-type message silently.
func TestUnknownTypeRejected(t *testing.T) {
	m := &Msg{Type: MsgLogout, Tag: 1, Volume: "v"}
	buf := m.Encode()
	buf[4] = 200 // unknown type
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("unknown PDU type accepted")
	}
}
