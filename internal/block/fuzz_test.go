package block

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Decode never panics and never over-consumes, no matter what
// bytes arrive (a malicious or corrupt initiator must not crash a target).
func TestPropertyDecodeRobustness(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		m, n, err := Decode(raw)
		if err != nil {
			return true // rejecting garbage is correct
		}
		return m != nil && n > 0 && n <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a valid PDU either still decodes
// (to possibly different fields) or returns an error — never panics, and
// never decodes past the original frame boundary.
func TestPropertySingleByteCorruption(t *testing.T) {
	base := (&Msg{Type: MsgWrite, Tag: 42, Volume: "unit0/disk03/sp1",
		Offset: 123456, Data: []byte("some payload bytes")}).Encode()
	f := func(pos uint16, val byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		buf := append([]byte(nil), base...)
		buf[int(pos)%len(buf)] ^= val
		m, n, err := Decode(buf)
		if err != nil {
			return true
		}
		_ = m
		return n <= len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

// A crafted frame whose inner name length exceeds the body must error, not
// slice out of range.
func TestCraftedOverlongNameLength(t *testing.T) {
	m := &Msg{Type: MsgLogin, Tag: 1, Volume: "abc"}
	buf := m.Encode()
	// Body starts at headerLen; first two bytes are the name length.
	binary.BigEndian.PutUint16(buf[headerLen:], 60000)
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("overlong name length accepted")
	}
}

// A frame claiming a huge body length but truncated must report
// ErrTruncated (stream accumulates more bytes) rather than erroring hard.
func TestClaimedBodyLongerThanBuffer(t *testing.T) {
	m := &Msg{Type: MsgWrite, Tag: 1, Volume: "v", Data: make([]byte, 64)}
	buf := m.Encode()
	binary.BigEndian.PutUint32(buf[16:], 1<<20) // claim 1MB body
	if _, _, err := Decode(buf); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated (waiting for more bytes)", err)
	}
}

// Garbage after the magic with a zero body length must not be accepted as
// a valid unknown-type message silently.
func TestUnknownTypeRejected(t *testing.T) {
	m := &Msg{Type: MsgLogout, Tag: 1, Volume: "v"}
	buf := m.Encode()
	buf[4] = 200 // unknown type
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("unknown PDU type accepted")
	}
}
