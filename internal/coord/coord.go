// Package coord provides the ZooKeeper-like coordination service the UStore
// prototype builds its Master on (§V-B): a hierarchical tree of znodes
// replicated with Paxos, ephemeral nodes bound to expiring sessions, watches
// on mutations, and a leader-election recipe.
//
// Each Store replica embeds a paxos.Node; mutations are proposed into the
// replicated log and applied deterministically on every replica. Reads are
// served from local applied state. Session liveness is tracked by the
// current Paxos leader, which proposes explicit ExpireSession commands —
// so ephemeral cleanup is itself replicated and deterministic.
//
// Divergence from real ZooKeeper, for simplicity: watches are persistent
// (they keep firing) rather than one-shot.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ustore/internal/paxos"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// Errors returned by tree operations.
var (
	// ErrExists is returned by Create on an existing path.
	ErrExists = errors.New("coord: node exists")
	// ErrNotFound is returned for operations on a missing path.
	ErrNotFound = errors.New("coord: no such node")
	// ErrNoParent is returned by Create when the parent path is missing.
	ErrNoParent = errors.New("coord: parent missing")
	// ErrHasChildren is returned by Delete on a non-empty node.
	ErrHasChildren = errors.New("coord: node has children")
	// ErrNoSession is returned when an ephemeral create names an unknown
	// or expired session.
	ErrNoSession = errors.New("coord: no such session")
	// ErrBadPath is returned for malformed paths.
	ErrBadPath = errors.New("coord: bad path")
)

// EventType classifies watch events.
type EventType int

const (
	// EventCreated fires when a node is created.
	EventCreated EventType = iota
	// EventDeleted fires when a node is deleted (including ephemeral
	// cleanup on session expiry).
	EventDeleted
	// EventDataChanged fires when a node's data is set.
	EventDataChanged
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "changed"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is delivered to watchers.
type Event struct {
	Type EventType
	Path string
	Data []byte
}

type znode struct {
	data     []byte
	children map[string]*znode
	// session is non-empty for ephemeral nodes.
	session string
	version int
}

// replicated command payloads
type (
	opCreate struct {
		Path    string
		Data    []byte
		Session string // "" = persistent
	}
	opSet struct {
		Path string
		Data []byte
	}
	opDelete struct {
		Path string
	}
	opNewSession struct {
		ID  string
		TTL time.Duration
		Now time.Duration // leader-stamped time, replicated for determinism
	}
	opExpireSession struct {
		ID  string
		Gen uint64 // expire only if session generation still matches
	}
	opTouchSession struct {
		ID string
	}
	pingMsg struct {
		Session string
	}
	// pingAck confirms receipt of a pingMsg back to the sender. A session
	// holder that can send but not receive keeps refreshing its session on
	// the leader while its acks vanish — the asymmetry Election uses to
	// self-demote instead of wedging the cluster behind an unreachable
	// leader.
	pingAck struct {
		Session string
	}
)

type sessionState struct {
	ttl time.Duration
	gen uint64 // bumped on replicated touch; guards stale expiry
}

// Store is one replica of the coordination service.
type Store struct {
	name  string
	sched *simtime.Scheduler
	net   *simnet.Network
	node  *simnet.Node
	px    *paxos.Node

	root     *znode
	sessions map[string]*sessionState

	// Leader-local liveness tracking.
	lastSeen map[string]simtime.Time
	// Replica-local ping-ack tracking (sender side): when the leader last
	// confirmed one of our session pings.
	ackSeen map[string]simtime.Time

	watches map[string][]func(Event)
	// childWatches fire on create/delete of direct children of a path.
	childWatches map[string][]func(Event)

	// pending completion callbacks keyed by command ID.
	pending map[string]func(error)
	nextCmd uint64

	// applyErrs records per-command outcomes so the proposing replica can
	// complete its callback with the real result.
	stopped bool

	// sweep is the leader's session-expiry scan period.
	sweep time.Duration
}

// coordName is the simnet node name for a replica's session-ping endpoint.
func coordName(name string) string { return "coord:" + name }

// NewStore creates a replica named name with the given paxos peer set.
// Names must match the paxos peers passed to every other replica.
func NewStore(net *simnet.Network, name string, peers []string, cfg paxos.Config) *Store {
	s := &Store{
		name:         name,
		sched:        net.Scheduler(),
		net:          net,
		node:         net.Node(coordName(name)),
		root:         &znode{children: map[string]*znode{}},
		sessions:     map[string]*sessionState{},
		lastSeen:     map[string]simtime.Time{},
		ackSeen:      map[string]simtime.Time{},
		watches:      map[string][]func(Event){},
		childWatches: map[string][]func(Event){},
		pending:      map[string]func(error){},
		sweep:        250 * time.Millisecond,
	}
	s.px = paxos.New(net, name, peers, cfg, s.apply)
	s.node.Handle(s.onMessage)
	s.sweepLoop()
	return s
}

// Name returns the replica name.
func (s *Store) Name() string { return s.name }

// IsLeader reports whether this replica's paxos node leads.
func (s *Store) IsLeader() bool { return s.px.IsLeader() }

// Paxos exposes the underlying consensus node (tests, failover drills).
func (s *Store) Paxos() *paxos.Node { return s.px }

// Stop crashes the replica; Resume restarts it.
func (s *Store) Stop() {
	s.stopped = true
	s.px.Stop()
	s.node.SetDown(true)
}

// Resume restarts a stopped replica.
func (s *Store) Resume() {
	s.stopped = false
	s.px.Resume()
	s.node.SetDown(false)
}

func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' || (len(path) > 1 && strings.HasSuffix(path, "/")) {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

func (s *Store) lookup(path string) (*znode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	n := s.root
	for _, p := range parts {
		c, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		n = c
	}
	return n, nil
}

// --- Local reads ---

// Get returns a node's data.
func (s *Store) Get(path string) ([]byte, error) {
	n, err := s.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// Exists reports whether a node exists.
func (s *Store) Exists(path string) bool {
	_, err := s.lookup(path)
	return err == nil
}

// Children returns a node's child names, sorted.
func (s *Store) Children(path string) ([]string, error) {
	n, err := s.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// --- Watches (local to this replica) ---

// Watch registers fn for events on path (created/deleted/changed).
func (s *Store) Watch(path string, fn func(Event)) {
	s.watches[path] = append(s.watches[path], fn)
}

// WatchChildren registers fn for create/delete events of path's direct
// children.
func (s *Store) WatchChildren(path string, fn func(Event)) {
	s.childWatches[path] = append(s.childWatches[path], fn)
}

func (s *Store) fire(ev Event) {
	for _, fn := range s.watches[ev.Path] {
		fn(ev)
	}
	if ev.Type == EventCreated || ev.Type == EventDeleted {
		parent := parentOf(ev.Path)
		for _, fn := range s.childWatches[parent] {
			fn(ev)
		}
	}
}

func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// --- Mutations (proposed through paxos) ---

func (s *Store) propose(data any, done func(error)) {
	s.nextCmd++
	id := fmt.Sprintf("%s/%d", s.name, s.nextCmd)
	if done != nil {
		s.pending[id] = done
	}
	s.px.Propose(paxos.Command{ID: id, Data: data}, nil)
}

// Create proposes creation of path. For ephemeral nodes pass the owning
// session ID; "" creates a persistent node.
func (s *Store) Create(path string, data []byte, session string, done func(error)) {
	s.propose(opCreate{Path: path, Data: data, Session: session}, done)
}

// Set proposes replacing path's data.
func (s *Store) Set(path string, data []byte, done func(error)) {
	s.propose(opSet{Path: path, Data: data}, done)
}

// Delete proposes removing path (must have no children).
func (s *Store) Delete(path string, done func(error)) {
	s.propose(opDelete{Path: path}, done)
}

// CreateSession proposes a new session with the given TTL. The session must
// then be kept alive with Ping at least once per TTL.
func (s *Store) CreateSession(id string, ttl time.Duration, done func(error)) {
	s.propose(opNewSession{ID: id, TTL: ttl, Now: s.sched.Now()}, done)
}

// Ping renews a session. It is routed to the current paxos leader, which
// tracks liveness locally and proposes expiry only when pings stop.
func (s *Store) Ping(session string) {
	if s.stopped {
		return
	}
	leader := s.px.Leader()
	if leader == "" {
		return
	}
	s.node.Send(coordName(leader), pingMsg{Session: session}, 16)
}

func (s *Store) onMessage(msg simnet.Message) {
	if s.stopped {
		return
	}
	switch p := msg.Payload.(type) {
	case pingMsg:
		s.lastSeen[p.Session] = s.sched.Now()
		s.node.Send(msg.From, pingAck{Session: p.Session}, 16)
	case pingAck:
		s.ackSeen[p.Session] = s.sched.Now()
	}
}

// LastPingAck returns when the paxos leader last acknowledged one of this
// replica's pings for session (sender-side view), and whether any ack has
// arrived at all.
func (s *Store) LastPingAck(session string) (simtime.Time, bool) {
	t, ok := s.ackSeen[session]
	return t, ok
}

// SetSweepInterval changes the session-expiry scan period (default 250ms).
// Long-horizon simulations raise it together with session TTLs so the sweep
// doesn't dominate the event budget; it must stay well below the shortest
// session TTL in use. Takes effect from the next scheduled sweep.
func (s *Store) SetSweepInterval(d time.Duration) {
	if d > 0 {
		s.sweep = d
	}
}

// sweepLoop is the leader's session-expiry scan.
func (s *Store) sweepLoop() {
	sweepEvery := s.sweep
	s.sched.After(sweepEvery, func() {
		if !s.stopped && s.px.IsLeader() {
			now := s.sched.Now()
			ids := make([]string, 0, len(s.sessions))
			for id := range s.sessions {
				ids = append(ids, id)
			}
			sort.Strings(ids) // deterministic expiry-proposal order
			for _, id := range ids {
				sess := s.sessions[id]
				seen, ok := s.lastSeen[id]
				if !ok {
					// First sweep since this replica became leader (or the
					// session was created elsewhere): grant a grace period.
					s.lastSeen[id] = now
					continue
				}
				if now-seen > sess.ttl {
					s.propose(opExpireSession{ID: id, Gen: sess.gen}, nil)
					delete(s.lastSeen, id) // avoid re-proposing every sweep
				}
			}
		}
		if !s.stopped {
			s.sweepLoop()
			return
		}
		// Stopped replicas re-arm on Resume via a fresh loop.
		s.sched.After(sweepEvery, func() { s.sweepLoop() })
	})
}

// --- Replicated state machine ---

func (s *Store) apply(slot int, cmd paxos.Command) {
	var err error
	switch op := cmd.Data.(type) {
	case opCreate:
		err = s.applyCreate(op)
	case opSet:
		err = s.applySet(op)
	case opDelete:
		err = s.applyDelete(op)
	case opNewSession:
		s.sessions[op.ID] = &sessionState{ttl: op.TTL}
		if s.px.IsLeader() {
			s.lastSeen[op.ID] = s.sched.Now()
		}
	case opTouchSession:
		if sess, ok := s.sessions[op.ID]; ok {
			sess.gen++
		}
	case opExpireSession:
		s.applyExpire(op)
	default:
		err = fmt.Errorf("coord: unknown op %T", cmd.Data)
	}
	if done, ok := s.pending[cmd.ID]; ok {
		delete(s.pending, cmd.ID)
		done(err)
	}
}

func (s *Store) applyCreate(op opCreate) error {
	parts, err := splitPath(op.Path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot create root", ErrExists)
	}
	if op.Session != "" {
		if _, ok := s.sessions[op.Session]; !ok {
			return fmt.Errorf("%w: %s", ErrNoSession, op.Session)
		}
	}
	n := s.root
	for _, p := range parts[:len(parts)-1] {
		c, ok := n.children[p]
		if !ok {
			return fmt.Errorf("%w: creating %s", ErrNoParent, op.Path)
		}
		n = c
	}
	leaf := parts[len(parts)-1]
	if _, dup := n.children[leaf]; dup {
		return fmt.Errorf("%w: %s", ErrExists, op.Path)
	}
	n.children[leaf] = &znode{
		data:     append([]byte(nil), op.Data...),
		children: map[string]*znode{},
		session:  op.Session,
	}
	s.fire(Event{Type: EventCreated, Path: op.Path, Data: op.Data})
	return nil
}

func (s *Store) applySet(op opSet) error {
	n, err := s.lookup(op.Path)
	if err != nil {
		return err
	}
	n.data = append([]byte(nil), op.Data...)
	n.version++
	s.fire(Event{Type: EventDataChanged, Path: op.Path, Data: op.Data})
	return nil
}

func (s *Store) applyDelete(op opDelete) error {
	parts, err := splitPath(op.Path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("coord: cannot delete root")
	}
	n := s.root
	for _, p := range parts[:len(parts)-1] {
		c, ok := n.children[p]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotFound, op.Path)
		}
		n = c
	}
	leaf := parts[len(parts)-1]
	child, ok := n.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, op.Path)
	}
	if len(child.children) > 0 {
		return fmt.Errorf("%w: %s", ErrHasChildren, op.Path)
	}
	delete(n.children, leaf)
	s.fire(Event{Type: EventDeleted, Path: op.Path})
	return nil
}

func (s *Store) applyExpire(op opExpireSession) {
	sess, ok := s.sessions[op.ID]
	if !ok || sess.gen != op.Gen {
		return // stale expiry (session touched or already gone)
	}
	delete(s.sessions, op.ID)
	delete(s.lastSeen, op.ID)
	// Remove all ephemerals owned by the session, deepest-first so
	// non-empty checks cannot trip.
	var owned []string
	var walk func(prefix string, n *znode)
	walk = func(prefix string, n *znode) {
		for name, c := range n.children {
			p := prefix + "/" + name
			if c.session == op.ID {
				owned = append(owned, p)
			}
			walk(p, c)
		}
	}
	walk("", s.root)
	sort.Slice(owned, func(i, j int) bool { return len(owned[i]) > len(owned[j]) })
	for _, p := range owned {
		_ = s.applyDelete(opDelete{Path: p})
	}
}

// SessionAlive reports whether the session exists in replicated state.
func (s *Store) SessionAlive(id string) bool {
	_, ok := s.sessions[id]
	return ok
}
