package coord

import (
	"testing"
	"time"

	"ustore/internal/paxos"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// TestLeaderStepsDownUnderAsymmetricPartition wedges the election's gray
// spot: a leader whose machine can SEND but not RECEIVE keeps refreshing its
// session on the paxos leader (outbound pings arrive), so the leader znode
// never expires on its own — yet the leader is unreachable to every client.
// The ping-ack self-demotion must make it step down within a couple of TTLs
// and go silent so a reachable candidate takes over.
func TestLeaderStepsDownUnderAsymmetricPartition(t *testing.T) {
	const ttl = 2 * time.Second
	s := simtime.NewScheduler(77)
	net := simnet.New(s)
	names := []string{"zk0", "zk1", "zk2"}
	var stores []*Store
	for _, name := range names {
		// Machine placement covers both the paxos node and the coord ping
		// node of each replica, so a machine-level one-way cut is the full
		// "NIC receives nothing" failure.
		net.Colocate(name, "mach-"+name)
		net.Colocate(coordName(name), "mach-"+name)
		stores = append(stores, NewStore(net, name, names, paxos.DefaultConfig()))
	}
	s.RunFor(2 * time.Second)

	leaderIdx := -1
	for i, st := range stores {
		if st.IsLeader() {
			leaderIdx = i
		}
	}
	if leaderIdx < 0 {
		t.Fatal("no paxos leader")
	}

	// Campaign only from the two replicas that are NOT the paxos leader, so
	// the winner's session pings must cross the network — the loopback
	// shortcut would hide the asymmetry this test exists to exercise.
	var cands []*Election
	var candStores []*Store
	for i, st := range stores {
		if i == leaderIdx {
			continue
		}
		e := NewElection(st, "/master", "master-"+st.Name(), ttl)
		e.Run()
		cands = append(cands, e)
		candStores = append(candStores, st)
	}
	s.RunFor(5 * time.Second)

	w := -1
	for i, e := range cands {
		if e.Leading() {
			if w >= 0 {
				t.Fatal("two leaders")
			}
			w = i
		}
	}
	if w < 0 {
		t.Fatal("no election winner")
	}
	o := 1 - w

	var deposedAt simtime.Time
	deposed := false
	cands[w].OnDeposed = func() {
		deposed = true
		deposedAt = s.Now()
	}

	// One-way cut: everything INTO the winner's machine is dropped, its
	// outbound traffic still flows.
	wm := "mach-" + candStores[w].Name()
	cutAt := s.Now()
	for _, name := range names {
		if m := "mach-" + name; m != wm {
			net.CutMachinesOneWay(m, wm)
		}
	}
	s.RunFor(60 * time.Second)

	if cands[w].Leading() {
		t.Fatal("unreachable leader still believes it is leading")
	}
	if !deposed {
		t.Fatal("OnDeposed never fired on the unreachable leader")
	}
	if took := deposedAt - cutAt; took > 2*ttl {
		t.Fatalf("step-down took %v, want <= %v", took, 2*ttl)
	}
	if !cands[o].Leading() {
		t.Fatal("reachable candidate did not take over")
	}

	// Heal: the demoted candidate catches up, learns the deletion, and the
	// cluster converges back to exactly one leader.
	for _, name := range names {
		if m := "mach-" + name; m != wm {
			net.HealMachinesOneWay(m, wm)
		}
	}
	s.RunFor(30 * time.Second)
	leaders := 0
	for _, e := range cands {
		if e.Leading() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders after heal = %d, want exactly 1", leaders)
	}
}
