package coord

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestTwoSessionsIndependentEphemerals(t *testing.T) {
	tc := newTestCluster(t, 3, 31)
	st := tc.stores[0]
	tkA := tc.sched.Every(500*time.Millisecond, func() { st.Ping("sA") })
	defer tkA.Stop()
	// Session B is pinged only during setup, then abandoned.
	tkB := tc.sched.Every(500*time.Millisecond, func() { st.Ping("sB") })
	mustDo(t, tc, func(done func(error)) { st.CreateSession("sA", 2*time.Second, done) })
	mustDo(t, tc, func(done func(error)) { st.CreateSession("sB", 2*time.Second, done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/a", nil, "sA", done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/b", nil, "sB", done) })
	tkB.Stop()
	tc.sched.RunFor(10 * time.Second)
	if !st.Exists("/a") {
		t.Fatal("pinged session's ephemeral expired")
	}
	if st.Exists("/b") {
		t.Fatal("unpinged session's ephemeral survived")
	}
}

func TestEphemeralSubtreeCleanup(t *testing.T) {
	tc := newTestCluster(t, 3, 32)
	st := tc.stores[0]
	// Keep the session alive through the serialized setup, then abandon it.
	tk := tc.sched.Every(500*time.Millisecond, func() { st.Ping("s") })
	mustDo(t, tc, func(done func(error)) { st.CreateSession("s", 2*time.Second, done) })
	// Ephemeral parent with ephemeral children (same session): expiry must
	// delete children before parents or the non-empty check would wedge.
	mustDo(t, tc, func(done func(error)) { st.Create("/p", nil, "s", done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/p/c1", nil, "s", done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/p/c2", nil, "s", done) })
	tk.Stop()
	tc.sched.RunFor(10 * time.Second)
	for _, path := range []string{"/p/c1", "/p/c2", "/p"} {
		if st.Exists(path) {
			t.Fatalf("%s survived session expiry", path)
		}
	}
}

func TestDeepTreeOperations(t *testing.T) {
	tc := newTestCluster(t, 3, 33)
	st := tc.stores[0]
	path := ""
	for i := 0; i < 6; i++ {
		path += fmt.Sprintf("/lvl%d", i)
		p := path
		mustDo(t, tc, func(done func(error)) { st.Create(p, []byte(p), "", done) })
	}
	data, err := tc.stores[2].Get(path)
	if err != nil || string(data) != path {
		t.Fatalf("deep get: %q %v", data, err)
	}
	kids, err := tc.stores[1].Children("/lvl0/lvl1")
	if err != nil || len(kids) != 1 || kids[0] != "lvl2" {
		t.Fatalf("children = %v %v", kids, err)
	}
}

func TestProposalsFromAllReplicasSerialize(t *testing.T) {
	tc := newTestCluster(t, 3, 34)
	// Every replica proposes creation of the same path: exactly one wins,
	// the rest observe ErrExists — the linearization the election relies
	// on.
	var oks, dups int
	for _, st := range tc.stores {
		st.Create("/race", nil, "", func(err error) {
			switch {
			case err == nil:
				oks++
			case errors.Is(err, ErrExists):
				dups++
			default:
				t.Errorf("unexpected: %v", err)
			}
		})
	}
	tc.sched.RunFor(3 * time.Second)
	if oks != 1 || dups != 2 {
		t.Fatalf("oks=%d dups=%d, want 1/2", oks, dups)
	}
}

func TestWatchSurvivesLeaderFailover(t *testing.T) {
	tc := newTestCluster(t, 3, 35)
	leader := tc.leaderStore(t)
	var observer *Store
	for _, st := range tc.stores {
		if st != leader {
			observer = st
			break
		}
	}
	events := 0
	observer.Watch("/w", func(ev Event) { events++ })
	mustDo(t, tc, func(done func(error)) { observer.Create("/w", nil, "", done) })
	leader.Stop()
	tc.sched.RunFor(5 * time.Second)
	// Propose through the observer; the new paxos leader commits it and
	// the local watch still fires.
	var err error = errors.New("pending")
	observer.Set("/w", []byte("v2"), func(e error) { err = e })
	tc.sched.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("set after failover: %v", err)
	}
	if events != 2 {
		t.Fatalf("events = %d, want create + change", events)
	}
}
