package coord

import (
	"errors"
	"strings"
	"time"
)

// Election implements the active/standby master election the prototype runs
// on ZooKeeper (§V-B): each candidate holds a session and races to create
// an ephemeral leader znode; losers watch it and retry when it vanishes.
type Election struct {
	store     *Store
	path      string
	candidate string
	session   string
	ttl       time.Duration

	// OnElected fires when this candidate wins.
	OnElected func()
	// OnDeposed fires when a previously-won leadership is lost (session
	// expired and someone else may take over).
	OnDeposed func()

	leading bool
	stopped bool
	ticker  interface{ Stop() }
}

// NewElection creates a candidate for leadership of path on the given
// replica. candidate is written as the leader znode's data so observers can
// see who leads.
func NewElection(store *Store, path, candidate string, ttl time.Duration) *Election {
	return &Election{
		store:     store,
		path:      path,
		candidate: candidate,
		session:   "election:" + path + ":" + candidate,
		ttl:       ttl,
	}
}

// Leading reports whether this candidate currently holds leadership.
func (e *Election) Leading() bool { return e.leading }

// Leader returns the current leader's candidate name per this replica's
// applied state ("" if none).
func (e *Election) Leader() string {
	data, err := e.store.Get(e.path)
	if err != nil {
		return ""
	}
	return string(data)
}

// Run starts campaigning. It keeps the session alive and re-campaigns
// whenever the leader znode disappears.
func (e *Election) Run() {
	e.store.Watch(e.path, func(ev Event) {
		if e.stopped {
			return
		}
		switch ev.Type {
		case EventDeleted:
			if e.leading {
				e.leading = false
				if e.OnDeposed != nil {
					e.OnDeposed()
				}
			}
			e.tryAcquire()
		}
	})
	// Ensure the leader znode's ancestors exist (ErrExists is fine).
	parts := strings.Split(e.path, "/")
	prefix := ""
	for _, p := range parts[1 : len(parts)-1] {
		prefix += "/" + p
		e.store.Create(prefix, nil, "", nil)
	}
	e.store.CreateSession(e.session, e.ttl, func(err error) {
		if err != nil || e.stopped {
			return
		}
		e.keepAlive()
		e.tryAcquire()
	})
}

// ensure re-campaigns if the path is leaderless. The deletion watch alone is
// not enough to guarantee progress: an acquire proposal can be lost to a
// leader change or partition without any further EventDeleted ever firing.
// The leader check is a local applied-state read, so the steady state (a
// leader exists) costs no proposals.
func (e *Election) ensure() {
	if e.stopped || e.leading {
		return
	}
	if _, err := e.store.Get(e.path); err != nil {
		e.tryAcquire()
	}
}

// Stop abandons the campaign (the session lapses and any held leadership
// expires naturally).
func (e *Election) Stop() {
	e.stopped = true
}

func (e *Election) keepAlive() {
	if e.stopped {
		return
	}
	e.store.Ping(e.session)
	e.ensure()
	e.store.sched.After(e.ttl/3, e.keepAlive)
}

func (e *Election) tryAcquire() {
	if e.stopped || e.leading {
		return
	}
	e.store.Create(e.path, []byte(e.candidate), e.session, func(err error) {
		if e.stopped {
			return
		}
		if err == nil {
			e.leading = true
			if e.OnElected != nil {
				e.OnElected()
			}
			return
		}
		if errors.Is(err, ErrNoSession) {
			// Our session expired (e.g. this replica was partitioned past the
			// TTL). Start a fresh session under the same ID and re-campaign,
			// as a ZooKeeper client would reconnect with a new session.
			e.store.CreateSession(e.session, e.ttl, func(serr error) {
				if serr == nil && !e.stopped {
					e.tryAcquire()
				}
			})
			return
		}
		// Lost the race: the watch on e.path (and the periodic ensure pass)
		// retries when it frees up.
	})
}
