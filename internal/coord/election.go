package coord

import (
	"errors"
	"strings"
	"time"

	"ustore/internal/simtime"
)

// Election implements the active/standby master election the prototype runs
// on ZooKeeper (§V-B): each candidate holds a session and races to create
// an ephemeral leader znode; losers watch it and retry when it vanishes.
type Election struct {
	store     *Store
	path      string
	candidate string
	session   string
	ttl       time.Duration

	// OnElected fires when this candidate wins.
	OnElected func()
	// OnDeposed fires when a previously-won leadership is lost (session
	// expired and someone else may take over).
	OnDeposed func()

	leading bool
	stopped bool
	ticker  interface{ Stop() }

	// electedAt and the store's ping-ack log detect asymmetric partitions:
	// a leader whose pings still reach the paxos leader (send path works)
	// but whose acks never come back (receive path dead) would otherwise
	// keep its session alive forever while being unreachable to everyone.
	electedAt simtime.Time
	// demoted marks a self-deposed leader: it stops pinging (so the session
	// expires and a reachable candidate takes over) and stops campaigning
	// until an applied event proves the receive path works again.
	demoted bool
}

// NewElection creates a candidate for leadership of path on the given
// replica. candidate is written as the leader znode's data so observers can
// see who leads.
func NewElection(store *Store, path, candidate string, ttl time.Duration) *Election {
	return &Election{
		store:     store,
		path:      path,
		candidate: candidate,
		session:   "election:" + path + ":" + candidate,
		ttl:       ttl,
	}
}

// Leading reports whether this candidate currently holds leadership.
func (e *Election) Leading() bool { return e.leading }

// SetSession overrides the session ID this candidate campaigns under; call
// before Run. A restarted candidate must use a fresh incarnation-stamped ID:
// re-creating the previous life's session would refresh it, and if that
// session still owns the leader znode the restarted process would keep the
// znode alive with its pings while never learning it "leads" — wedging the
// group leaderless forever.
func (e *Election) SetSession(id string) { e.session = id }

// Leader returns the current leader's candidate name per this replica's
// applied state ("" if none).
func (e *Election) Leader() string {
	data, err := e.store.Get(e.path)
	if err != nil {
		return ""
	}
	return string(data)
}

// Run starts campaigning. It keeps the session alive and re-campaigns
// whenever the leader znode disappears.
func (e *Election) Run() {
	e.store.Watch(e.path, func(ev Event) {
		if e.stopped {
			return
		}
		switch ev.Type {
		case EventDeleted:
			// An applied deletion reached us, so the receive path works:
			// a self-demoted candidate may campaign again.
			e.demoted = false
			if e.leading {
				e.leading = false
				if e.OnDeposed != nil {
					e.OnDeposed()
				}
			}
			e.tryAcquire()
		}
	})
	// Ensure the leader znode's ancestors exist (ErrExists is fine).
	parts := strings.Split(e.path, "/")
	prefix := ""
	for _, p := range parts[1 : len(parts)-1] {
		prefix += "/" + p
		e.store.Create(prefix, nil, "", nil)
	}
	e.store.CreateSession(e.session, e.ttl, func(err error) {
		if err != nil || e.stopped {
			return
		}
		e.keepAlive()
		e.tryAcquire()
	})
}

// ensure re-campaigns if the path is leaderless. The deletion watch alone is
// not enough to guarantee progress: an acquire proposal can be lost to a
// leader change or partition without any further EventDeleted ever firing.
// The leader check is a local applied-state read, so the steady state (a
// leader exists) costs no proposals.
func (e *Election) ensure() {
	if e.stopped || e.leading || e.demoted {
		return
	}
	if _, err := e.store.Get(e.path); err != nil {
		e.tryAcquire()
	}
}

// Stop abandons the campaign (the session lapses and any held leadership
// expires naturally).
func (e *Election) Stop() {
	e.stopped = true
}

func (e *Election) keepAlive() {
	if e.stopped {
		return
	}
	if e.leading {
		// Gray-failure guard: our pings may still be refreshing the session
		// on the paxos leader (outbound path alive) while nothing reaches us
		// back. Without this check an unreachable leader holds the znode
		// forever and the cluster wedges. If no ack has confirmed
		// leadership within a full TTL, step down and go silent so the
		// session expires and a reachable candidate can take over.
		confirmed := e.electedAt
		if ack, ok := e.store.LastPingAck(e.session); ok && ack > confirmed {
			confirmed = ack
		}
		if e.store.sched.Now()-confirmed > e.ttl {
			e.leading = false
			e.demoted = true
			if e.OnDeposed != nil {
				e.OnDeposed()
			}
		}
	}
	if !e.demoted {
		e.store.Ping(e.session)
	}
	e.ensure()
	e.store.sched.After(e.ttl/3, e.keepAlive)
}

func (e *Election) tryAcquire() {
	if e.stopped || e.leading || e.demoted {
		return
	}
	e.store.Create(e.path, []byte(e.candidate), e.session, func(err error) {
		if e.stopped {
			return
		}
		if err == nil {
			e.leading = true
			e.electedAt = e.store.sched.Now()
			if e.OnElected != nil {
				e.OnElected()
			}
			return
		}
		if errors.Is(err, ErrNoSession) {
			// Our session expired (e.g. this replica was partitioned past the
			// TTL). Start a fresh session under the same ID and re-campaign,
			// as a ZooKeeper client would reconnect with a new session.
			e.store.CreateSession(e.session, e.ttl, func(serr error) {
				if serr == nil && !e.stopped {
					e.tryAcquire()
				}
			})
			return
		}
		// Lost the race: the watch on e.path (and the periodic ensure pass)
		// retries when it frees up.
	})
}
