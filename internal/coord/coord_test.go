package coord

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ustore/internal/paxos"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

type testCluster struct {
	sched  *simtime.Scheduler
	net    *simnet.Network
	stores []*Store
}

func newTestCluster(t *testing.T, n int, seed int64) *testCluster {
	t.Helper()
	s := simtime.NewScheduler(seed)
	net := simnet.New(s)
	var names []string
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("zk%d", i))
	}
	tc := &testCluster{sched: s, net: net}
	for _, name := range names {
		tc.stores = append(tc.stores, NewStore(net, name, names, paxos.DefaultConfig()))
	}
	s.RunFor(2 * time.Second) // elect a paxos leader
	return tc
}

func (tc *testCluster) leaderStore(t *testing.T) *Store {
	t.Helper()
	for _, st := range tc.stores {
		if st.IsLeader() {
			return st
		}
	}
	t.Fatal("no coord leader")
	return nil
}

func mustDo(t *testing.T, tc *testCluster, op func(done func(error))) {
	t.Helper()
	var got error = errors.New("pending")
	op(func(err error) { got = err })
	tc.sched.RunFor(2 * time.Second)
	if got != nil {
		t.Fatalf("op failed: %v", got)
	}
}

func TestCreateGetOnAllReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, 1)
	st := tc.stores[0]
	mustDo(t, tc, func(done func(error)) { st.Create("/a", []byte("hello"), "", done) })
	for _, replica := range tc.stores {
		data, err := replica.Get("/a")
		if err != nil || string(data) != "hello" {
			t.Fatalf("%s: data=%q err=%v", replica.Name(), data, err)
		}
	}
}

func TestCreateValidation(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	st := tc.stores[0]
	mustDo(t, tc, func(done func(error)) { st.Create("/a", nil, "", done) })

	var err error
	st.Create("/a", nil, "", func(e error) { err = e })
	tc.sched.RunFor(time.Second)
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	st.Create("/missing/child", nil, "", func(e error) { err = e })
	tc.sched.RunFor(time.Second)
	if !errors.Is(err, ErrNoParent) {
		t.Fatalf("orphan create err = %v", err)
	}
	st.Create("bad", nil, "", func(e error) { err = e })
	tc.sched.RunFor(time.Second)
	if !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path err = %v", err)
	}
	st.Create("/eph", nil, "ghost-session", func(e error) { err = e })
	tc.sched.RunFor(time.Second)
	if !errors.Is(err, ErrNoSession) {
		t.Fatalf("ghost session err = %v", err)
	}
}

func TestSetAndDelete(t *testing.T) {
	tc := newTestCluster(t, 3, 3)
	st := tc.stores[0]
	mustDo(t, tc, func(done func(error)) { st.Create("/dir", nil, "", done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/dir/leaf", []byte("v1"), "", done) })
	mustDo(t, tc, func(done func(error)) { st.Set("/dir/leaf", []byte("v2"), done) })
	data, _ := tc.stores[2].Get("/dir/leaf")
	if string(data) != "v2" {
		t.Fatalf("data = %q", data)
	}

	var err error
	st.Delete("/dir", func(e error) { err = e })
	tc.sched.RunFor(time.Second)
	if !errors.Is(err, ErrHasChildren) {
		t.Fatalf("delete non-empty err = %v", err)
	}
	mustDo(t, tc, func(done func(error)) { st.Delete("/dir/leaf", done) })
	mustDo(t, tc, func(done func(error)) { st.Delete("/dir", done) })
	if tc.stores[1].Exists("/dir") {
		t.Fatal("deleted node still exists on replica")
	}
}

func TestChildren(t *testing.T) {
	tc := newTestCluster(t, 3, 4)
	st := tc.stores[0]
	mustDo(t, tc, func(done func(error)) { st.Create("/hosts", nil, "", done) })
	for _, h := range []string{"h3", "h1", "h2"} {
		h := h
		mustDo(t, tc, func(done func(error)) { st.Create("/hosts/"+h, nil, "", done) })
	}
	kids, err := tc.stores[1].Children("/hosts")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"h1", "h2", "h3"}
	if len(kids) != 3 || kids[0] != want[0] || kids[1] != want[1] || kids[2] != want[2] {
		t.Fatalf("children = %v", kids)
	}
}

func TestWatchesFireOnEveryReplica(t *testing.T) {
	tc := newTestCluster(t, 3, 5)
	var events []string
	tc.stores[2].Watch("/w", func(ev Event) {
		events = append(events, ev.Type.String())
	})
	st := tc.stores[0]
	mustDo(t, tc, func(done func(error)) { st.Create("/w", []byte("a"), "", done) })
	mustDo(t, tc, func(done func(error)) { st.Set("/w", []byte("b"), done) })
	mustDo(t, tc, func(done func(error)) { st.Delete("/w", done) })
	if len(events) != 3 || events[0] != "created" || events[1] != "changed" || events[2] != "deleted" {
		t.Fatalf("events = %v", events)
	}
}

func TestChildWatches(t *testing.T) {
	tc := newTestCluster(t, 3, 6)
	st := tc.stores[0]
	mustDo(t, tc, func(done func(error)) { st.Create("/hosts", nil, "", done) })
	var created, deleted int
	tc.stores[1].WatchChildren("/hosts", func(ev Event) {
		switch ev.Type {
		case EventCreated:
			created++
		case EventDeleted:
			deleted++
		}
	})
	mustDo(t, tc, func(done func(error)) { st.Create("/hosts/h1", nil, "", done) })
	mustDo(t, tc, func(done func(error)) { st.Delete("/hosts/h1", done) })
	if created != 1 || deleted != 1 {
		t.Fatalf("created=%d deleted=%d", created, deleted)
	}
}

func TestEphemeralExpiresWhenPingsStop(t *testing.T) {
	tc := newTestCluster(t, 3, 7)
	st := tc.stores[0]
	// Ping from the moment the session is requested: the mustDo helper
	// settles 2 virtual seconds per op, longer than the TTL.
	tk := tc.sched.Every(500*time.Millisecond, func() { st.Ping("sess1") })
	mustDo(t, tc, func(done func(error)) { st.CreateSession("sess1", 2*time.Second, done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/live", []byte("x"), "sess1", done) })

	// Keep pinging for 5 seconds: node stays.
	tc.sched.RunFor(5 * time.Second)
	if !tc.stores[1].Exists("/live") {
		t.Fatal("ephemeral expired despite pings")
	}
	// Stop pinging: node goes within a few TTLs.
	tk.Stop()
	tc.sched.RunFor(8 * time.Second)
	for _, r := range tc.stores {
		if r.Exists("/live") {
			t.Fatalf("%s: ephemeral survived expiry", r.Name())
		}
		if r.SessionAlive("sess1") {
			t.Fatalf("%s: session survived expiry", r.Name())
		}
	}
}

func TestEphemeralSurvivesCoordLeaderFailover(t *testing.T) {
	tc := newTestCluster(t, 3, 8)
	st := tc.stores[0]
	// Ping from every replica (started before the session so the TTL is
	// covered from the instant it exists), so the session holder is
	// independent of which coord node leads.
	tk := tc.sched.Every(500*time.Millisecond, func() {
		for _, r := range tc.stores {
			if !r.stopped {
				r.Ping("sess1")
			}
		}
	})
	defer tk.Stop()
	mustDo(t, tc, func(done func(error)) { st.CreateSession("sess1", 2*time.Second, done) })
	mustDo(t, tc, func(done func(error)) { st.Create("/live", nil, "sess1", done) })

	leader := tc.leaderStore(t)
	leader.Stop()
	tc.sched.RunFor(6 * time.Second)
	for _, r := range tc.stores {
		if r == leader {
			continue
		}
		if !r.Exists("/live") {
			t.Fatalf("%s: ephemeral lost across coord failover", r.Name())
		}
	}
}

func TestElectionSingleWinner(t *testing.T) {
	tc := newTestCluster(t, 3, 9)
	var winners []string
	var elections []*Election
	for i, st := range tc.stores {
		e := NewElection(st, "/master", fmt.Sprintf("master%d", i), 2*time.Second)
		name := fmt.Sprintf("master%d", i)
		e.OnElected = func() { winners = append(winners, name) }
		elections = append(elections, e)
		e.Run()
	}
	tc.sched.RunFor(5 * time.Second)
	if len(winners) != 1 {
		t.Fatalf("winners = %v, want exactly one", winners)
	}
	leading := 0
	for _, e := range elections {
		if e.Leading() {
			leading++
		}
	}
	if leading != 1 {
		t.Fatalf("leading count = %d", leading)
	}
	if got := elections[0].Leader(); got != winners[0] {
		t.Fatalf("Leader() = %q, want %q", got, winners[0])
	}
}

func TestElectionFailover(t *testing.T) {
	tc := newTestCluster(t, 3, 10)
	var elections []*Election
	for i, st := range tc.stores {
		e := NewElection(st, "/master", fmt.Sprintf("master%d", i), 2*time.Second)
		elections = append(elections, e)
		e.Run()
	}
	tc.sched.RunFor(5 * time.Second)
	var winner int = -1
	for i, e := range elections {
		if e.Leading() {
			winner = i
		}
	}
	if winner < 0 {
		t.Fatal("no initial winner")
	}
	// The winner stops campaigning (its process dies): pings stop, its
	// session expires, the znode vanishes, someone else takes over.
	deposed := false
	elections[winner].OnDeposed = func() { deposed = true }
	elections[winner].Stop()
	tc.sched.RunFor(15 * time.Second)
	_ = deposed // the stopped election won't see its own deposition
	newLeading := 0
	for i, e := range elections {
		if i == winner {
			continue
		}
		if e.Leading() {
			newLeading++
		}
	}
	if newLeading != 1 {
		t.Fatalf("after failover, %d standbys lead (want 1)", newLeading)
	}
}

func TestReplicaCatchesUpAfterRestart(t *testing.T) {
	tc := newTestCluster(t, 3, 11)
	st := tc.stores[0]
	victim := tc.stores[2]
	if victim.IsLeader() {
		victim = tc.stores[1]
	}
	proposer := st
	if proposer == victim {
		proposer = tc.stores[1]
	}
	victim.Stop()
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/n%d", i)
		mustDo(t, tc, func(done func(error)) { proposer.Create(path, nil, "", done) })
	}
	victim.Resume()
	tc.sched.RunFor(5 * time.Second)
	for i := 0; i < 5; i++ {
		if !victim.Exists(fmt.Sprintf("/n%d", i)) {
			t.Fatalf("restarted replica missing /n%d", i)
		}
	}
}
