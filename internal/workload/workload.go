// Package workload reproduces the paper's Iometer methodology (§VII-A):
// workloads are the cross product of transfer size, read percentage, and
// access pattern, driven by one worker per disk with one outstanding IO.
//
// Two execution modes cover the paper's experiments:
//
//   - Closed-loop per-IO simulation against simulated disks (Table II): each
//     worker submits, waits for completion, submits again. Mixed workloads
//     alternate read/write, paying the disk model's turnaround penalty.
//
//   - Fluid-flow mode over the USB fat-tree's bandwidth model (Figure 5 and
//     the duplex aggregate): each disk contributes a flow whose standalone
//     demand comes from the closed-loop rate, and the tree's max-min fair
//     sharing determines the aggregate.
package workload

import (
	"fmt"
	"time"

	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/simtime"
	"ustore/internal/usb"
)

// Spec names one workload point, e.g. {4KB, 100% read, sequential}.
type Spec struct {
	Size    int
	ReadPct int // 100, 50, or 0
	Pattern disk.Pattern
}

// String renders the paper's workload naming: "4K-SR", "4M-RW", ...
// (size, S/R for sequential/random, R/W/M for read/write/mixed).
func (s Spec) String() string {
	size := fmt.Sprintf("%dB", s.Size)
	switch {
	case s.Size >= 1<<20 && s.Size%(1<<20) == 0:
		size = fmt.Sprintf("%dM", s.Size>>20)
	case s.Size >= 1<<10 && s.Size%(1<<10) == 0:
		size = fmt.Sprintf("%dK", s.Size>>10)
	}
	pat := "S"
	if s.Pattern == disk.Random {
		pat = "R"
	}
	dir := "M"
	switch s.ReadPct {
	case 100:
		dir = "R"
	case 0:
		dir = "W"
	}
	return size + "-" + pat + dir
}

// AvgServiceTime returns the closed-loop per-IO time for the spec at queue
// depth 1: pure streams use their direction's service time; mixed streams
// alternate and pay the turnaround penalty on every op.
func (s Spec) AvgServiceTime(p disk.Params, ic disk.Interconnect) time.Duration {
	read := disk.Op{Read: true, Size: s.Size, Pattern: s.Pattern}
	write := disk.Op{Read: false, Size: s.Size, Pattern: s.Pattern}
	switch s.ReadPct {
	case 100:
		return p.ServiceTime(ic, read)
	case 0:
		return p.ServiceTime(ic, write)
	default:
		read.DirectionSwitch = true
		write.DirectionSwitch = true
		r := p.ServiceTime(ic, read)
		w := p.ServiceTime(ic, write)
		// General mix: fraction f of reads; every boundary between runs
		// pays turnaround. For f=0.5 alternation makes every op a switch.
		f := float64(s.ReadPct) / 100
		return time.Duration(f*float64(r) + (1-f)*float64(w))
	}
}

// StandaloneRate returns a single disk's sustained byte rates (read and
// write components) for the spec, uncontended.
func (s Spec) StandaloneRate(p disk.Params, ic disk.Interconnect) (readBps, writeBps float64) {
	t := s.AvgServiceTime(p, ic).Seconds()
	total := float64(s.Size) / t
	f := float64(s.ReadPct) / 100
	return total * f, total * (1 - f)
}

// IOPS returns the closed-loop operations per second for the spec.
func (s Spec) IOPS(p disk.Params, ic disk.Interconnect) float64 {
	return 1 / s.AvgServiceTime(p, ic).Seconds()
}

// PaperWorkloads returns Table II's twelve workload points in table order.
func PaperWorkloads() []Spec {
	var out []Spec
	for _, size := range []int{4 << 10, 4 << 20} {
		for _, pat := range []disk.Pattern{disk.Sequential, disk.Random} {
			for _, pct := range []int{100, 50, 0} {
				out = append(out, Spec{Size: size, ReadPct: pct, Pattern: pat})
			}
		}
	}
	return out
}

// Result aggregates a closed-loop run.
type Result struct {
	Spec     Spec
	Duration time.Duration
	Ops      uint64
	Bytes    uint64
}

// TotalIOPS returns operations per second over the run.
func (r Result) TotalIOPS() float64 { return float64(r.Ops) / r.Duration.Seconds() }

// TotalMBps returns decimal megabytes per second over the run.
func (r Result) TotalMBps() float64 { return float64(r.Bytes) / r.Duration.Seconds() / 1e6 }

// RunClosedLoop drives one worker per disk for the given virtual duration
// and reports the aggregate. Disks must be spinning.
func RunClosedLoop(sched *simtime.Scheduler, disks []*disk.Disk, spec Spec, duration time.Duration) Result {
	res := Result{Spec: spec, Duration: duration}
	deadline := sched.Now() + duration
	for _, d := range disks {
		startWorker(sched, d, spec, deadline, &res)
	}
	sched.RunUntil(deadline)
	return res
}

func startWorker(sched *simtime.Scheduler, d *disk.Disk, spec Spec, deadline simtime.Time, res *Result) {
	rng := sched.Rand()
	var offset int64
	nextRead := true
	var submit func()
	submit = func() {
		if sched.Now() >= deadline {
			return
		}
		read := true
		switch spec.ReadPct {
		case 100:
		case 0:
			read = false
		default:
			read = nextRead
			nextRead = !nextRead
		}
		var off int64
		if spec.Pattern == disk.Sequential {
			off = offset
			offset += int64(spec.Size)
			if offset+int64(spec.Size) > d.Capacity() {
				offset = 0
			}
		} else {
			maxSlot := (d.Capacity() - int64(spec.Size)) / int64(spec.Size)
			off = rng.Int63n(maxSlot) * int64(spec.Size)
		}
		req := &disk.Request{
			Op:     disk.Op{Read: read, Size: spec.Size, Pattern: spec.Pattern},
			Offset: off,
			Done: func(_ []byte, err error) {
				if err != nil {
					return // powered off mid-run; worker stops
				}
				if sched.Now() <= deadline {
					res.Ops++
					res.Bytes += uint64(spec.Size)
				}
				submit()
			},
		}
		if !read {
			req.Data = make([]byte, 0) // metadata-only write: store elides
		}
		d.Submit(req)
	}
	submit()
}

// FluidResult reports steady-state rates from the flow model.
type FluidResult struct {
	Spec Spec
	// PerDisk maps disk ID to its total allocated byte rate.
	PerDisk map[fabric.NodeID]float64
	// ReadBps and WriteBps are aggregate direction rates.
	ReadBps, WriteBps float64
}

// TotalMBps returns the aggregate rate in decimal MB/s.
func (r FluidResult) TotalMBps() float64 { return (r.ReadBps + r.WriteBps) / 1e6 }

// FabricResources installs the tree's bandwidth resources for the given
// binding into fs: per-direction root-port capacity and command rate per
// host, and per-direction uplink capacity per hub.
func FabricResources(fs *usb.FlowSim, f *fabric.Fabric) {
	for _, h := range f.Hosts() {
		fs.SetResource("host:"+h+":up", usb.RootPortBytesPerSec)
		fs.SetResource("host:"+h+":down", usb.RootPortBytesPerSec)
		fs.SetResource("host:"+h+":duplex", usb.RootPortDuplexBytesPerSec)
		fs.SetResource("cmd:"+h, usb.RootPortCmdsPerSec)
	}
	for _, hub := range f.Hubs() {
		fs.SetResource("hub:"+string(hub)+":up", usb.LinkBytesPerSec)
		fs.SetResource("hub:"+string(hub)+":down", usb.LinkBytesPerSec)
	}
}

// RunFluid starts one (or for mixed specs, two) flows per disk over the
// current fabric attachment and returns the steady-state max-min rates.
// Flows are open-ended; they are stopped before returning.
func RunFluid(fs *usb.FlowSim, f *fabric.Fabric, p disk.Params, disks []fabric.NodeID, spec Spec) (FluidResult, error) {
	res := FluidResult{Spec: spec, PerDisk: make(map[fabric.NodeID]float64)}
	defer stopPrefixed(fs, disks)
	recs, err := startFlows(fs, f, p, disks, spec)
	if err != nil {
		return res, err
	}
	snapshot(&res, recs)
	return res, nil
}

// flowRec tracks one started flow for later rate snapshotting.
type flowRec struct {
	fl *usb.Flow
	d  fabric.NodeID
	up bool
}

// startFlows installs the spec's flows for the given disks and returns
// their handles without snapshotting rates (max-min rebalances as later
// populations join).
func startFlows(fs *usb.FlowSim, f *fabric.Fabric, p disk.Params, disks []fabric.NodeID, spec Spec) ([]flowRec, error) {
	readDemand, writeDemand := spec.StandaloneRate(p, disk.AttachFabric)
	var recs []flowRec
	for _, d := range disks {
		hubs, host, err := dataPath(f, d)
		if err != nil {
			return recs, err
		}
		mk := func(dir string, demand float64) *usb.Flow {
			units := map[string]float64{
				"host:" + host + ":" + dir: 1,
				"host:" + host + ":duplex": 1,
				"cmd:" + host:              1 / float64(spec.Size),
			}
			for _, hub := range hubs {
				units["hub:"+string(hub)+":"+dir] = 1
			}
			fl := &usb.Flow{ID: string(d) + ":" + dir, Demand: demand, UnitsPerByte: units}
			fs.StartFlow(fl, -1, nil)
			return fl
		}
		if readDemand > 0 {
			recs = append(recs, flowRec{fl: mk("up", readDemand), d: d, up: true})
		}
		if writeDemand > 0 {
			recs = append(recs, flowRec{fl: mk("down", writeDemand), d: d, up: false})
		}
	}
	return recs, nil
}

// snapshot folds current flow rates into a result.
func snapshot(res *FluidResult, recs []flowRec) {
	for _, r := range recs {
		res.PerDisk[r.d] += r.fl.Rate()
		if r.up {
			res.ReadBps += r.fl.Rate()
		} else {
			res.WriteBps += r.fl.Rate()
		}
	}
}

// RunFluidSplit reproduces the paper's duplex methodology (§VII-A): half
// the disks run a pure read stream and the other half a pure write stream
// of the given transfer size, so both port directions fill simultaneously.
// Rates are snapshotted only after every flow is installed.
func RunFluidSplit(fs *usb.FlowSim, f *fabric.Fabric, p disk.Params, disks []fabric.NodeID, size int) (FluidResult, error) {
	readers := Spec{Size: size, ReadPct: 100, Pattern: disk.Sequential}
	writers := Spec{Size: size, ReadPct: 0, Pattern: disk.Sequential}
	res := FluidResult{Spec: readers, PerDisk: make(map[fabric.NodeID]float64)}
	defer stopPrefixed(fs, disks)
	var all []flowRec
	for i, spec := range []Spec{readers, writers} {
		var half []fabric.NodeID
		for j, d := range disks {
			if j%2 == i {
				half = append(half, d)
			}
		}
		recs, err := startFlows(fs, f, p, half, spec)
		if err != nil {
			return res, err
		}
		all = append(all, recs...)
	}
	snapshot(&res, all)
	return res, nil
}

// stopPrefixed stops both direction flows for every disk.
func stopPrefixed(fs *usb.FlowSim, disks []fabric.NodeID) {
	for _, d := range disks {
		fs.StopFlow(string(d) + ":up")
		fs.StopFlow(string(d) + ":down")
	}
}

// dataPath resolves a disk's current hubs and host.
func dataPath(f *fabric.Fabric, d fabric.NodeID) (hubs []fabric.NodeID, host string, err error) {
	path, err := f.PathToRoot(d)
	if err != nil {
		return nil, "", fmt.Errorf("disk %s: %w", d, err)
	}
	for _, id := range path {
		switch f.Node(id).Kind {
		case fabric.KindHub:
			hubs = append(hubs, id)
		case fabric.KindRootPort:
			host = f.Node(id).Host
		}
	}
	return hubs, host, nil
}
