package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ustore/internal/core"
	"ustore/internal/disk"
	"ustore/internal/obs"
	"ustore/internal/policy"
	"ustore/internal/simtime"
)

// Multi-tenant open-loop traffic engine. Where the Iometer workloads above
// drive disks closed-loop at fixed queue depth, this engine models the
// *demand side* of a cold-storage deployment: a population of tenants in
// priority classes (premium restores, standard access, archival-ingest
// campaigns, batch recalls) whose requests arrive open-loop — Poisson
// interarrivals that do not slow down when the system does, which is
// exactly what makes overload dangerous. Tenant activity is Zipf-skewed,
// the aggregate rate breathes diurnally, and a restore-storm scenario
// mass-recalls volumes that were spun down after archival.
//
// Everything is driven by the simtime scheduler from rng streams derived
// from TrafficOptions.Seed, so a given option set is byte-identical across
// runs and across parallel sweep workers. The engine pairs with the
// protection stack (core.Protector + master-side throttling): the same
// seed run with Protect on and off is the head-to-head experiment.

// ClassSpec describes one tenant class (an admission-priority tier).
type ClassSpec struct {
	Name string
	// Priority orders admission (lower is served first). Keep priorities
	// unique across classes.
	Priority int
	// Tenants is the class population; per-request tenant identity is
	// Zipf-skewed over it with exponent ZipfS.
	Tenants int
	ZipfS   float64
	// Rate is the class's mean steady arrival rate in requests/sec
	// (0 = no steady traffic; the class only sees campaign/storm load).
	Rate float64
	// IOSize is the bytes moved per request (reads for every class except
	// ingest, which writes).
	IOSize int
	// Budget bounds one request's total retry time: a request that cannot
	// complete inside it fails at full elapsed time (latency-to-outcome).
	Budget time.Duration
	// QueueLimit / MaxWait parameterize the class's admission queue in
	// protected runs.
	QueueLimit int
	MaxWait    time.Duration
}

// TrafficOptions parameterizes a traffic run. Start from
// DefaultTrafficOptions — goldens, CI smoke, and the acceptance tests all
// share it.
type TrafficOptions struct {
	Seed    int64
	Classes []ClassSpec

	// Placement: every disk gets VolumesPerDisk volumes of VolumeSize
	// bytes; the last ColdDisks disks (sorted by name) are archival — spun
	// down after setup, recalled only by the storm. Gateways is how many
	// frontend clients carry tenant traffic (tenants hash onto them).
	VolumeSize     int64
	VolumesPerDisk int
	ColdDisks      int
	Gateways       int

	// Phase timeline (all phases run back to back).
	Warmup    time.Duration
	Quiescent time.Duration
	Storm     time.Duration
	Drain     time.Duration

	// Diurnal modulation: the steady arrival rate breathes as
	// Rate * (1 + Amp*sin(2*pi*t/Period)), thinned from the peak rate so
	// the rng draw sequence stays one-per-arrival.
	DiurnalAmp    float64
	DiurnalPeriod time.Duration

	// Restore storm: during the storm phase, every WaveEvery a wave of
	// WaveSize batch-class requests arrives over ~WaveSpread.
	// WaveWarmFraction of them re-read warm volumes (the restore
	// pipeline's catalog traffic — what actually tramples premium);
	// the rest mass-recall archived volumes on spun-down disks.
	StormEnabled     bool
	WaveEvery        time.Duration
	WaveSize         int
	WaveSpread       time.Duration
	WaveWarmFraction float64

	// Archival-ingest campaigns: windows of IngestLen starting at
	// IngestStart and repeating every IngestEvery, during which the ingest
	// class allocates fresh archival volumes and writes IngestSize bytes
	// into each, at IngestRate ops/sec.
	IngestStart time.Duration
	IngestEvery time.Duration
	IngestLen   time.Duration
	IngestRate  float64
	IngestSize  int

	// Protect arms the overload-protection stack; the knobs below feed
	// core.ProtectionConfig (see ProtectionConfig()).
	Protect       bool
	SlotsPerDisk  int
	TenantRate    float64
	TenantBurst   float64
	MasterRate    float64
	MasterBurst   float64
	MinSpinning   int
	MaxSpinning   int
	MaxSpinningUp int
	IdleAfter     time.Duration

	// StreamingQuantiles replaces the exact percentile computation (every
	// completed latency retained until the report) with O(1)-memory P²
	// estimators per (class, phase). Percentiles become approximate; counts
	// and the max stay exact. Off by default — goldens pin both modes.
	StreamingQuantiles bool
}

// Canonical class names used by DefaultTrafficOptions and the storm/ingest
// machinery.
const (
	ClassPremium  = "premium"
	ClassStandard = "standard"
	ClassIngest   = "ingest"
	ClassBatch    = "batch"
)

// DefaultTrafficOptions is the shared traffic configuration: a 3-host
// 6-disk unit, four tenant classes, a ~24-minute timeline. The protection
// knobs cap the active-disk count at 5 of 6 (the power budget), serialize
// one IO per disk so backlog stays in the admission queues, and clip
// tenants at 3 req/s.
func DefaultTrafficOptions(seed int64) TrafficOptions {
	return TrafficOptions{
		Seed: seed,
		Classes: []ClassSpec{
			{Name: ClassPremium, Priority: 0, Tenants: 12, ZipfS: 1.2, Rate: 4.0,
				IOSize: 256 << 10, Budget: 4 * time.Second, QueueLimit: 64, MaxWait: 2 * time.Second},
			{Name: ClassStandard, Priority: 1, Tenants: 16, ZipfS: 1.2, Rate: 1.5,
				IOSize: 1 << 20, Budget: 10 * time.Second, QueueLimit: 96, MaxWait: 10 * time.Second},
			{Name: ClassIngest, Priority: 2, Tenants: 6, ZipfS: 1.1, Rate: 0,
				IOSize: 128 << 10, Budget: 15 * time.Second, QueueLimit: 64, MaxWait: 15 * time.Second},
			{Name: ClassBatch, Priority: 3, Tenants: 10, ZipfS: 1.1, Rate: 0.3,
				IOSize: 4 << 20, Budget: 25 * time.Second, QueueLimit: 256, MaxWait: 20 * time.Second},
		},
		VolumeSize:     8 << 20,
		VolumesPerDisk: 2,
		ColdDisks:      2,
		Gateways:       4,

		Warmup:    4 * time.Minute,
		Quiescent: 10 * time.Minute,
		Storm:     6 * time.Minute,
		Drain:     4 * time.Minute,

		DiurnalAmp:    0.25,
		DiurnalPeriod: 10 * time.Minute,

		WaveEvery:        60 * time.Second,
		WaveSize:         800,
		WaveSpread:       2 * time.Second,
		WaveWarmFraction: 0.6,

		IngestStart: 2 * time.Minute,
		IngestEvery: 8 * time.Minute,
		IngestLen:   time.Minute,
		IngestRate:  1.0,
		IngestSize:  128 << 10,

		SlotsPerDisk:  1,
		TenantRate:    3,
		TenantBurst:   12,
		MasterRate:    5,
		MasterBurst:   10,
		MinSpinning:   4,
		MaxSpinning:   5,
		MaxSpinningUp: 1,
		IdleAfter:     30 * time.Second,
	}
}

// ProtectionConfig translates the options into the core protection stack's
// configuration (admission classes mirror the traffic classes).
func (o TrafficOptions) ProtectionConfig() *core.ProtectionConfig {
	pc := &core.ProtectionConfig{
		SlotsPerDisk: o.SlotsPerDisk,
		TenantRate:   o.TenantRate,
		TenantBurst:  o.TenantBurst,
		MasterRate:   o.MasterRate,
		MasterBurst:  o.MasterBurst,
		Scale: policy.AutoScalerConfig{
			MinSpinning:   o.MinSpinning,
			MaxSpinning:   o.MaxSpinning,
			MaxSpinningUp: o.MaxSpinningUp,
			IdleAfter:     o.IdleAfter,
		},
		BreakerDisks: true,
	}
	for _, cs := range o.Classes {
		pc.Classes = append(pc.Classes, policy.ClassConfig{
			Name:       cs.Name,
			Priority:   cs.Priority,
			QueueLimit: cs.QueueLimit,
			MaxWait:    cs.MaxWait,
		})
	}
	return pc
}

// total is the full phase timeline length.
func (o TrafficOptions) total() time.Duration {
	return o.Warmup + o.Quiescent + o.Storm + o.Drain
}

// trafficVolume is one placed volume.
type trafficVolume struct {
	space  core.SpaceID
	diskID string
	size   int64
}

// classState is one class's runtime: its rng stream, tenant CDF, and
// per-phase outcome accounting.
type classState struct {
	spec    ClassSpec
	index   int
	rng     *rand.Rand
	cdf     []float64
	counts  map[string]map[string]int  // phase -> outcome -> n
	samples map[string][]time.Duration // phase -> completed latencies
	stream  map[string]*phaseQuantiles // phase -> P² state (StreamingQuantiles)
	cOut    map[string]*obs.Counter    // outcome -> counter
	hist    map[string]*obs.Histogram  // phase -> latency histogram
}

// TrafficEngine drives one traffic run against a booted cluster. Create
// with NewTrafficEngine, then Setup, then Run. All callbacks execute on the
// cluster's scheduler goroutine.
type TrafficEngine struct {
	c     *core.Cluster
	o     TrafficOptions
	sched *simtime.Scheduler
	rec   *obs.Recorder
	logf  func(format string, a ...any)

	prot    *core.Protector
	classes []*classState
	byName  map[string]*classState

	diskIDs   []string
	warm      []*trafficVolume
	archived  []*trafficVolume
	coldDisks []string
	gws       []*core.ClientLib
	ingestCl  *core.ClientLib
	ingestBuf []byte

	start    simtime.Time
	stopped  bool
	inflight int

	stormRng *rand.Rand

	activeMax int
	spinUps   int
	spinDowns int
	observing bool // state-change observers armed (post-setup)

	sampler *simtime.Ticker
}

var errTrafficPending = errors.New("workload: pending")

// NewTrafficEngine builds the engine over a booted cluster. logf receives
// the engine's event-log lines (nil discards them).
func NewTrafficEngine(c *core.Cluster, o TrafficOptions, logf func(string, ...any)) *TrafficEngine {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e := &TrafficEngine{
		c:        c,
		o:        o,
		sched:    c.Sched,
		rec:      c.Cfg.Recorder,
		logf:     logf,
		byName:   make(map[string]*classState),
		stormRng: rand.New(rand.NewSource(o.Seed ^ 0x517cc1b727220a95)),
	}
	for i, spec := range o.Classes {
		cs := &classState{
			spec:    spec,
			index:   i,
			rng:     rand.New(rand.NewSource(o.Seed*1000003 + int64(i))),
			cdf:     zipfCDF(spec.Tenants, spec.ZipfS),
			counts:  make(map[string]map[string]int),
			samples: make(map[string][]time.Duration),
			cOut:    make(map[string]*obs.Counter),
			hist:    make(map[string]*obs.Histogram),
		}
		if o.StreamingQuantiles {
			cs.stream = make(map[string]*phaseQuantiles)
		}
		for _, ph := range Phases {
			cs.counts[ph] = make(map[string]int)
			if o.StreamingQuantiles {
				cs.stream[ph] = newPhaseQuantiles()
			} else {
				cs.samples[ph] = getSampleSlice()
			}
			cs.hist[ph] = e.rec.Histogram("workload", "request_seconds",
				obs.L("class", spec.Name), obs.L("phase", ph))
		}
		for _, out := range []string{OutcomeOK, OutcomeError, OutcomeShed, OutcomeThrottled} {
			cs.cOut[out] = e.rec.Counter("workload", "requests_total",
				obs.L("class", spec.Name), obs.L("outcome", out))
		}
		e.classes = append(e.classes, cs)
		e.byName[spec.Name] = cs
	}
	for id := range c.Disks {
		e.diskIDs = append(e.diskIDs, id)
	}
	sort.Strings(e.diskIDs)
	return e
}

// zipfCDF builds the cumulative tenant-pick distribution with weights
// 1/rank^s.
func zipfCDF(n int, s float64) []float64 {
	if n < 1 {
		n = 1
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / sum
		cdf[i] = acc
	}
	cdf[n-1] = 1
	return cdf
}

// pickTenant draws a Zipf-skewed tenant from the class population.
func (cs *classState) pickTenant() (string, int) {
	u := cs.rng.Float64()
	i := sort.SearchFloat64s(cs.cdf, u)
	if i >= len(cs.cdf) {
		i = len(cs.cdf) - 1
	}
	return fmt.Sprintf("%s-t%02d", cs.spec.Name, i), i
}

// expGap draws one exponential interarrival gap for the given rate.
func expGap(rng *rand.Rand, perSec float64) time.Duration {
	u := rng.Float64()
	return time.Duration(-math.Log(1-u) / perSec * float64(time.Second))
}

// settleUntil advances the simulation until cond holds or budget elapses.
func (e *TrafficEngine) settleUntil(cond func() bool, budget time.Duration) bool {
	deadline := e.sched.Now() + budget
	for e.sched.Now() < deadline {
		if cond() {
			return true
		}
		e.c.Settle(5 * time.Second)
	}
	return cond()
}

// Setup places the volume population and establishes the warm/cold split:
// one allocator service per disk claims its disk (the master's same-service
// affinity keeps the pair together), gateways mount everything, and the
// archival disks are spun down. Runs before the protector exists, so setup
// traffic is never shed.
func (e *TrafficEngine) Setup() error {
	o := e.o
	nDisks := len(e.diskIDs)
	if o.ColdDisks >= nDisks {
		return fmt.Errorf("workload: ColdDisks %d must leave at least one warm disk of %d", o.ColdDisks, nDisks)
	}
	var vols []*trafficVolume
	for i := 0; i < nDisks; i++ {
		cl := e.c.Client(fmt.Sprintf("talloc%d", i), fmt.Sprintf("tvol%d", i))
		for j := 0; j < o.VolumesPerDisk; j++ {
			var rep core.AllocateReply
			err := errTrafficPending
			cl.Allocate(o.VolumeSize, func(r core.AllocateReply, er error) { rep, err = r, er })
			e.settleUntil(func() bool { return !errors.Is(err, errTrafficPending) }, 2*time.Minute)
			if err != nil {
				return fmt.Errorf("workload: allocating tvol%d/%d: %w", i, j, err)
			}
			vols = append(vols, &trafficVolume{space: rep.Space, diskID: rep.DiskID, size: rep.Size})
		}
	}
	// Cold set: the last ColdDisks populated disks in sorted order.
	populated := map[string]bool{}
	for _, v := range vols {
		populated[v.diskID] = true
	}
	var popIDs []string
	for id := range populated {
		popIDs = append(popIDs, id)
	}
	sort.Strings(popIDs)
	e.coldDisks = popIDs[len(popIDs)-o.ColdDisks:]
	cold := map[string]bool{}
	for _, id := range e.coldDisks {
		cold[id] = true
	}
	for _, v := range vols {
		if cold[v.diskID] {
			e.archived = append(e.archived, v)
		} else {
			e.warm = append(e.warm, v)
		}
	}
	// Gateways mount every volume (mounting is metadata-only: it never
	// spins a disk up, so mounting the archival set is free).
	for g := 0; g < o.Gateways; g++ {
		cl := e.c.Client(fmt.Sprintf("gw%d", g), fmt.Sprintf("gwsvc%d", g))
		for _, v := range vols {
			err := errTrafficPending
			cl.Mount(v.space, func(er error) { err = er })
			e.settleUntil(func() bool { return !errors.Is(err, errTrafficPending) }, 2*time.Minute)
			if err != nil {
				return fmt.Errorf("workload: gw%d mounting %s: %w", g, v.space, err)
			}
		}
		e.gws = append(e.gws, cl)
	}
	e.ingestCl = e.c.Client("ingest", "ingest")
	e.ingestBuf = make([]byte, o.IngestSize)
	for i := range e.ingestBuf {
		e.ingestBuf[i] = byte(i*7 + int(o.Seed))
	}
	// Archive: spin the cold disks down (the role the power manager plays
	// after an archival service's idle window).
	e.c.Settle(time.Minute)
	for _, id := range e.coldDisks {
		d := e.c.Disks[id]
		d.SpinDown()
		if st := d.State(); st != disk.StateSpunDown {
			return fmt.Errorf("workload: cold disk %s did not spin down (state %v)", id, st)
		}
	}
	e.logf("traffic setup: %d volumes on %d disks (%d warm, %d archived on %v)",
		len(vols), nDisks, len(e.warm), len(e.archived), e.coldDisks)
	return nil
}

// Run executes the phase timeline and returns the SLO report. The caller
// owns nothing else on the scheduler: Run advances simulated time itself.
func (e *TrafficEngine) Run() *SLOReport {
	o := e.o
	if o.Protect {
		e.prot = core.NewProtector(e.c, *o.ProtectionConfig())
		e.logf("protection armed: slots/disk=%d tenant=%g/s master=%g/s budget=%d spinning",
			o.SlotsPerDisk, o.TenantRate, o.MasterRate, o.MaxSpinning)
	}
	e.start = e.sched.Now()
	for _, id := range e.diskIDs {
		d := e.c.Disks[id]
		d.OnStateChange(func(_, st disk.State) {
			if !e.observing {
				return
			}
			switch st {
			case disk.StateSpinningUp:
				e.spinUps++
			case disk.StateSpunDown:
				e.spinDowns++
			}
		})
	}
	e.observing = true
	e.sampler = e.sched.Every(time.Second, e.sampleActive)
	e.sampleActive()

	for _, cs := range e.classes {
		if cs.spec.Rate > 0 {
			e.steadyLoop(cs)
		}
	}
	e.scheduleIngest()
	if o.StormEnabled {
		e.scheduleStorm()
	}
	for _, ph := range []struct {
		at   time.Duration
		name string
	}{{o.Warmup, PhaseQuiescent}, {o.Warmup + o.Quiescent, PhaseStorm},
		{o.Warmup + o.Quiescent + o.Storm, PhaseDrain}} {
		name := ph.name
		e.sched.After(ph.at, func() { e.logf("traffic phase: %s", name) })
	}

	e.c.Settle(o.total())
	e.stopped = true
	e.settleUntil(func() bool { return e.inflight == 0 }, 2*time.Minute)
	e.sampler.Stop()
	if e.prot != nil {
		e.prot.Stop()
	}
	if e.inflight > 0 {
		e.logf("traffic: %d requests still in flight at teardown", e.inflight)
	}
	e.logf("traffic complete: active disks max %d of %d, %d spin-ups, %d spin-downs",
		e.activeMax, len(e.diskIDs), e.spinUps, e.spinDowns)
	return e.report()
}

// sampleActive updates the spinning-disk high-water mark.
func (e *TrafficEngine) sampleActive() {
	n := 0
	for _, id := range e.diskIDs {
		switch e.c.Disks[id].State() {
		case disk.StateIdle, disk.StateActive, disk.StateSpinningUp:
			n++
		}
	}
	if n > e.activeMax {
		e.activeMax = n
	}
}

// phaseAt maps an arrival time onto the phase timeline.
func (e *TrafficEngine) phaseAt(t simtime.Time) string {
	d := time.Duration(t - e.start)
	switch {
	case d < e.o.Warmup:
		return PhaseWarmup
	case d < e.o.Warmup+e.o.Quiescent:
		return PhaseQuiescent
	case d < e.o.Warmup+e.o.Quiescent+e.o.Storm:
		return PhaseStorm
	default:
		return PhaseDrain
	}
}

// record books one finished request under its arrival phase.
func (e *TrafficEngine) record(cs *classState, phase, outcome string, elapsed time.Duration) {
	cs.counts[phase][outcome]++
	cs.cOut[outcome].Inc()
	if outcome == OutcomeOK || outcome == OutcomeError {
		if cs.stream != nil {
			cs.stream[phase].observe(elapsed)
		} else {
			cs.samples[phase] = append(cs.samples[phase], elapsed)
		}
		cs.hist[phase].ObserveDuration(elapsed)
	}
}

// steadyLoop is a class's open-loop steady arrival process: exponential
// gaps at the diurnal peak rate, thinned to the instantaneous rate.
func (e *TrafficEngine) steadyLoop(cs *classState) {
	peak := cs.spec.Rate * (1 + e.o.DiurnalAmp)
	var next func()
	next = func() {
		if e.stopped {
			return
		}
		e.sched.After(expGap(cs.rng, peak), func() {
			if e.stopped {
				return
			}
			if e.diurnalAccept(cs) {
				tenant, idx := cs.pickTenant()
				vol := e.warm[(idx*7+cs.index)%len(e.warm)]
				off := e.volOffset(cs.rng, vol, cs.spec.IOSize)
				e.request(cs, tenant, idx, vol, off, cs.spec.IOSize, false)
			}
			next()
		})
	}
	next()
}

// diurnalAccept thins the peak-rate arrival stream down to the
// instantaneous diurnal rate (accept/reject keeps one rng draw per
// arrival, so the stream stays aligned across option changes).
func (e *TrafficEngine) diurnalAccept(cs *classState) bool {
	amp := e.o.DiurnalAmp
	if amp <= 0 {
		return true
	}
	t := float64(e.sched.Now()-e.start) / float64(e.o.DiurnalPeriod)
	m := 1 + amp*math.Sin(2*math.Pi*t)
	return cs.rng.Float64()*(1+amp) < m
}

// volOffset draws an aligned in-volume offset for an IO of the given size.
func (e *TrafficEngine) volOffset(rng *rand.Rand, vol *trafficVolume, size int) int64 {
	span := vol.size - int64(size)
	if span <= 0 {
		return 0
	}
	const align = 4096
	return rng.Int63n(span/align+1) * align
}

// request runs one read request end to end: optional directory lookup (the
// master's metadata gate), admission (protected runs), then the data read
// with the class's retry budget. Outcomes are recorded at full elapsed time
// from arrival.
func (e *TrafficEngine) request(cs *classState, tenant string, tenantIdx int, vol *trafficVolume, off int64, size int, withLookup bool) {
	startAt := e.sched.Now()
	phase := e.phaseAt(startAt)
	e.inflight++
	finished := false
	finish := func(outcome string) {
		if finished {
			return
		}
		finished = true
		e.inflight--
		e.record(cs, phase, outcome, time.Duration(e.sched.Now()-startAt))
	}
	gw := e.gws[tenantIdx%len(e.gws)]
	readDone := func(granted bool) func([]byte, error) {
		return func(_ []byte, err error) {
			if granted {
				e.prot.Done(vol.diskID, err)
			}
			switch {
			case err == nil:
				finish(OutcomeOK)
			case core.IsThrottled(err):
				finish(OutcomeThrottled)
			default:
				finish(OutcomeError)
			}
		}
	}
	gated := func() {
		if e.prot == nil {
			gw.ReadWithBudget(vol.space, off, size, cs.spec.Budget, readDone(false))
			return
		}
		e.prot.Admit(cs.spec.Name, tenant, vol.diskID,
			func() { gw.ReadWithBudget(vol.space, off, size, cs.spec.Budget, readDone(true)) },
			func(reason string) {
				if reason == core.RejectThrottled {
					finish(OutcomeThrottled)
				} else {
					finish(OutcomeShed)
				}
			})
	}
	if !withLookup {
		gated()
		return
	}
	gw.Lookup(vol.space, func(_ core.LookupReply, err error) {
		if err != nil {
			if core.IsThrottled(err) {
				finish(OutcomeThrottled)
			} else {
				finish(OutcomeError)
			}
			return
		}
		gated()
	})
}

// scheduleStorm lays out the restore-storm waves across the storm phase.
// Each wave's arrival offsets and targets are drawn eagerly from the storm
// rng at schedule time, so the draw order is independent of completion
// interleaving.
func (e *TrafficEngine) scheduleStorm() {
	o := e.o
	stormStart := o.Warmup + o.Quiescent
	cs := e.byName[ClassBatch]
	if cs == nil || len(e.archived) == 0 {
		return
	}
	rate := float64(o.WaveSize) / o.WaveSpread.Seconds()
	for w := 0; ; w++ {
		waveAt := stormStart + time.Duration(w)*o.WaveEvery
		if waveAt >= stormStart+o.Storm {
			break
		}
		wave := w
		e.sched.After(waveAt, func() {
			e.logf("restore storm: wave %d (%d requests over ~%v)", wave, o.WaveSize, o.WaveSpread)
			at := time.Duration(0)
			for i := 0; i < o.WaveSize; i++ {
				at += expGap(e.stormRng, rate)
				tenant, idx := cs.pickTenant()
				var vol *trafficVolume
				warmRead := e.stormRng.Float64() < o.WaveWarmFraction
				if warmRead {
					vol = e.warm[e.stormRng.Intn(len(e.warm))]
				} else {
					vol = e.archived[e.stormRng.Intn(len(e.archived))]
				}
				off := e.volOffset(e.stormRng, vol, cs.spec.IOSize)
				lookup := !warmRead // recalls resolve the archived volume first
				e.sched.After(at, func() {
					if e.stopped {
						return
					}
					e.request(cs, tenant, idx, vol, off, cs.spec.IOSize, lookup)
				})
			}
		})
	}
}

// scheduleIngest lays out the archival-ingest campaigns: bursts of
// allocate-mount-write against fresh archival volumes.
func (e *TrafficEngine) scheduleIngest() {
	o := e.o
	cs := e.byName[ClassIngest]
	if cs == nil || o.IngestRate <= 0 || o.IngestLen <= 0 {
		return
	}
	activeEnd := o.Warmup + o.Quiescent + o.Storm // campaigns stay out of drain
	for k := 0; ; k++ {
		at := o.IngestStart + time.Duration(k)*o.IngestEvery
		if at+o.IngestLen > activeEnd {
			break
		}
		campaign := k
		e.sched.After(at, func() {
			n := 0
			tt := time.Duration(0)
			for {
				tt += expGap(cs.rng, o.IngestRate)
				if tt > o.IngestLen {
					break
				}
				n++
				tenant, _ := cs.pickTenant()
				e.sched.After(tt, func() {
					if e.stopped {
						return
					}
					e.ingestOp(cs, tenant)
				})
			}
			e.logf("ingest campaign %d: %d archival writes over %v", campaign, n, o.IngestLen)
		})
	}
}

// ingestOp is one archival-ingest operation: allocate a fresh volume,
// mount it, and write the ingest payload (gated by admission on the disk
// the allocation landed on).
func (e *TrafficEngine) ingestOp(cs *classState, tenant string) {
	startAt := e.sched.Now()
	phase := e.phaseAt(startAt)
	e.inflight++
	finished := false
	finish := func(outcome string) {
		if finished {
			return
		}
		finished = true
		e.inflight--
		e.record(cs, phase, outcome, time.Duration(e.sched.Now()-startAt))
	}
	fail := func(err error) {
		if core.IsThrottled(err) {
			finish(OutcomeThrottled)
		} else {
			finish(OutcomeError)
		}
	}
	cl := e.ingestCl
	cl.Allocate(e.o.VolumeSize, func(rep core.AllocateReply, err error) {
		if err != nil {
			fail(err)
			return
		}
		cl.Mount(rep.Space, func(err error) {
			if err != nil {
				fail(err)
				return
			}
			write := func(granted bool) {
				cl.Write(rep.Space, 0, e.ingestBuf, func(err error) {
					if granted {
						e.prot.Done(rep.DiskID, err)
					}
					if err != nil {
						fail(err)
						return
					}
					finish(OutcomeOK)
				})
			}
			if e.prot == nil {
				write(false)
				return
			}
			e.prot.Admit(cs.spec.Name, tenant, rep.DiskID,
				func() { write(true) },
				func(reason string) {
					if reason == core.RejectThrottled {
						finish(OutcomeThrottled)
					} else {
						finish(OutcomeShed)
					}
				})
		})
	})
}

// report assembles the SLO report from the per-class accounting.
func (e *TrafficEngine) report() *SLOReport {
	r := &SLOReport{
		Seed:           e.o.Seed,
		Protected:      e.o.Protect,
		Storm:          e.o.StormEnabled,
		ActiveDisksMax: e.activeMax,
		TotalDisks:     len(e.diskIDs),
		SpinUps:        e.spinUps,
		SpinDowns:      e.spinDowns,
	}
	if e.prot != nil {
		r.BreakerOpens = e.prot.BreakerOpens
	}
	for _, cs := range e.classes {
		for _, ph := range Phases {
			if cs.stream != nil {
				r.Rows = append(r.Rows, sloRowStream(cs.spec.Name, ph, cs.counts[ph], cs.stream[ph]))
				continue
			}
			r.Rows = append(r.Rows, sloRow(cs.spec.Name, ph, cs.counts[ph], cs.samples[ph]))
			// The row captured the quantiles; the sample arena is dead.
			// Recycle it for the next run (or next sweep seed).
			putSampleSlice(cs.samples[ph])
			cs.samples[ph] = nil
		}
	}
	return r
}
