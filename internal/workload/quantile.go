package workload

import (
	"sort"
	"time"
)

// Streaming quantile estimation for the SLO report. The exact percentile
// path keeps every completed request's latency until the report is built —
// O(requests) memory per (class, phase), which is what caps tenant-scale
// runs. TrafficOptions.StreamingQuantiles swaps it for the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers per tracked quantile,
// adjusted with a piecewise-parabolic fit on every observation, O(1)
// memory regardless of run length. Estimates are approximate (the goldens
// pin both modes); the max stays exact. The update is pure float
// arithmetic over the observation sequence, so streaming runs keep the
// engine's byte-determinism.

// P2Quantile estimates a single quantile p in (0,1) online.
type P2Quantile struct {
	p float64
	n int

	// first holds the initial observations until 5 arrive (and serves as
	// the exact sample set for tiny streams).
	first []float64

	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based counts)
	want [5]float64 // desired marker positions
	dw   [5]float64 // desired-position increment per observation
}

// NewP2Quantile returns an estimator for quantile p (e.g. 0.99).
func NewP2Quantile(p float64) *P2Quantile {
	return &P2Quantile{p: p}
}

// Observe feeds one sample.
func (e *P2Quantile) Observe(x float64) {
	e.n++
	if e.n <= 5 {
		e.first = append(e.first, x)
		if e.n == 5 {
			sort.Float64s(e.first)
			for i := 0; i < 5; i++ {
				e.q[i] = e.first[i]
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.dw = [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
		}
		return
	}

	// Locate x's cell, stretching the extreme markers if it falls outside.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dw[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if qn := e.parabolic(i, s); e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by s (±1).
func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots a
// neighboring marker.
func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Count returns the number of observations.
func (e *P2Quantile) Count() int { return e.n }

// Value returns the current estimate (0 with no observations; exact while
// fewer than 5 samples exist, using the report's floor-index convention).
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := append([]float64(nil), e.first...)
		sort.Float64s(s)
		i := int(float64(len(s)) * e.p)
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return e.q[2]
}

// phaseQuantiles is one (class, phase)'s streaming replacement for the
// latency sample slice: the three reported percentiles plus an exact max.
type phaseQuantiles struct {
	p50  *P2Quantile
	p99  *P2Quantile
	p999 *P2Quantile
	max  time.Duration
}

func newPhaseQuantiles() *phaseQuantiles {
	return &phaseQuantiles{
		p50:  NewP2Quantile(0.50),
		p99:  NewP2Quantile(0.99),
		p999: NewP2Quantile(0.999),
	}
}

func (pq *phaseQuantiles) observe(d time.Duration) {
	x := float64(d)
	pq.p50.Observe(x)
	pq.p99.Observe(x)
	pq.p999.Observe(x)
	if d > pq.max {
		pq.max = d
	}
}
