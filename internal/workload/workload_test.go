package workload

import (
	"math"
	"testing"
	"time"

	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/simtime"
	"ustore/internal/usb"
)

func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestSpecString(t *testing.T) {
	cases := map[string]Spec{
		"4K-SR": {Size: 4 << 10, ReadPct: 100, Pattern: disk.Sequential},
		"4K-SM": {Size: 4 << 10, ReadPct: 50, Pattern: disk.Sequential},
		"4M-RW": {Size: 4 << 20, ReadPct: 0, Pattern: disk.Random},
		"4M-SR": {Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", spec, got, want)
		}
	}
}

func TestPaperWorkloadsCoverTableII(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 12 {
		t.Fatalf("got %d workloads, want 12", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		seen[w.String()] = true
	}
	if len(seen) != 12 {
		t.Fatalf("duplicates in paper workloads: %v", seen)
	}
}

// TestTableIIClosedLoop reproduces every Table II cell with the closed-loop
// runner and checks it against the paper's measurement within tolerance.
func TestTableIIClosedLoop(t *testing.T) {
	// Paper Table II, in PaperWorkloads order per interconnect.
	paper := map[disk.Interconnect][12]float64{
		// 4KB IO/s: seq 100/50/0, rand 100/50/0; then 4MB MB/s likewise.
		disk.AttachSATA:   {13378, 8066, 11211, 191.9, 105.4, 86.9, 184.8, 105.7, 180.2, 129.1, 78.7, 57.5},
		disk.AttachUSB:    {5380, 4294, 6166, 189.0, 105.2, 85.2, 185.8, 119.7, 184.0, 147.9, 95.5, 79.3},
		disk.AttachFabric: {5381, 4595, 6181, 189.2, 106.0, 87.9, 185.8, 118.6, 184.9, 147.7, 97.7, 79.9},
	}
	// Tolerances: the service-time model reproduces pure read/write
	// columns tightly; mixed columns and 4MB random (where the paper's own
	// three interconnects disagree by up to 40%) get more slack.
	tolerances := [12]float64{0.10, 0.12, 0.10, 0.10, 0.15, 0.10, 0.05, 0.25, 0.05, 0.30, 0.30, 0.45}
	for ic, cells := range paper {
		for i, spec := range PaperWorkloads() {
			s := simtime.NewScheduler(int64(i))
			d := disk.New(s, "d0", disk.DT01ACA300(), ic)
			d.SpinUp()
			s.Run()
			res := RunClosedLoop(s, []*disk.Disk{d}, spec, 20*time.Second)
			var got float64
			if spec.Size == 4<<10 {
				got = res.TotalIOPS()
			} else {
				got = res.TotalMBps()
			}
			if !within(got, cells[i], tolerances[i]) {
				t.Errorf("%v %s: model %.1f, paper %.1f (tol %.0f%%)",
					ic, spec, got, cells[i], tolerances[i]*100)
			}
		}
	}
}

func TestStandaloneRateConsistentWithClosedLoop(t *testing.T) {
	p := disk.DT01ACA300()
	for _, spec := range PaperWorkloads() {
		r, w := spec.StandaloneRate(p, disk.AttachFabric)
		analytic := (r + w) / 1e6
		s := simtime.NewScheduler(9)
		d := disk.New(s, "d0", p, disk.AttachFabric)
		d.SpinUp()
		s.Run()
		res := RunClosedLoop(s, []*disk.Disk{d}, spec, 10*time.Second)
		if !within(res.TotalMBps(), analytic, 0.05) {
			t.Errorf("%s: closed loop %.2f MB/s vs analytic %.2f", spec, res.TotalMBps(), analytic)
		}
	}
}

func newFlowRig(t *testing.T) (*fabric.Fabric, *usb.FlowSim) {
	t.Helper()
	f, err := fabric.Prototype()
	if err != nil {
		t.Fatal(err)
	}
	s := simtime.NewScheduler(1)
	fs := usb.NewFlowSim(
		func() time.Duration { return s.Now() },
		func(d time.Duration, fn func()) func() { ev := s.After(d, fn); return ev.Cancel })
	FabricResources(fs, f)
	return f, fs
}

// firstNDisksOnOneHost returns n disks currently attached to the same host,
// moving groups there as needed (mirrors the paper's single-host scaling).
func disksOnHost(t *testing.T, f *fabric.Fabric, host string, n int) []fabric.NodeID {
	t.Helper()
	var out []fabric.NodeID
	for g := 0; len(out) < n; g++ {
		var pairs []fabric.DiskHost
		for i := 0; i < 4; i++ {
			pairs = append(pairs, fabric.DiskHost{Disk: fabric.DiskID(g*4 + i), Host: host})
		}
		turns, err := f.ForcedTurns(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range turns {
			if err := f.SetSwitch(st.Switch, st.Sel); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4 && len(out) < n; i++ {
			out = append(out, fabric.DiskID(g*4+i))
		}
	}
	return out
}

func TestFigure5LargeSequentialSaturatesAtTwoDisks(t *testing.T) {
	f, fs := newFlowRig(t)
	p := disk.DT01ACA300()
	spec := Spec{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential}
	host := f.Hosts()[0]
	var totals []float64
	for _, n := range []int{1, 2, 4} {
		disks := disksOnHost(t, f, host, n)
		res, err := RunFluid(fs, f, p, disks, spec)
		if err != nil {
			t.Fatal(err)
		}
		totals = append(totals, res.TotalMBps())
	}
	if !within(totals[0], 185, 0.05) {
		t.Errorf("1 disk = %.1f MB/s, want ~185", totals[0])
	}
	// 2 disks fill the ~300 MB/s root port; 4 disks add nothing.
	if !within(totals[1], 300, 0.03) {
		t.Errorf("2 disks = %.1f MB/s, want ~300 (root saturation)", totals[1])
	}
	if !within(totals[2], 300, 0.03) {
		t.Errorf("4 disks = %.1f MB/s, want flat at ~300", totals[2])
	}
}

func TestFigure5SmallSequentialSaturatesAtEightDisks(t *testing.T) {
	f, fs := newFlowRig(t)
	p := disk.DT01ACA300()
	spec := Spec{Size: 4 << 10, ReadPct: 100, Pattern: disk.Sequential}
	host := f.Hosts()[0]
	var totals []float64
	for _, n := range []int{1, 2, 4, 8, 12} {
		disks := disksOnHost(t, f, host, n)
		res, err := RunFluid(fs, f, p, disks, spec)
		if err != nil {
			t.Fatal(err)
		}
		totals = append(totals, res.TotalMBps())
	}
	// Scales linearly up to ~8 disks, then the root command rate caps it.
	for i := 1; i < 3; i++ {
		n := float64(int(1) << i)
		if !within(totals[i], totals[0]*n, 0.05) {
			t.Errorf("%.0f disks = %.1f, want linear scaling from %.1f", n, totals[i], totals[0])
		}
	}
	if totals[4] > totals[3]*1.05 {
		t.Errorf("12 disks (%.1f) kept scaling past 8 (%.1f)", totals[4], totals[3])
	}
}

func TestFigure5RandomScalesLinearlyTo12(t *testing.T) {
	f, fs := newFlowRig(t)
	p := disk.DT01ACA300()
	spec := Spec{Size: 4 << 10, ReadPct: 100, Pattern: disk.Random}
	host := f.Hosts()[0]
	d1, err := RunFluid(fs, f, p, disksOnHost(t, f, host, 1), spec)
	if err != nil {
		t.Fatal(err)
	}
	d12, err := RunFluid(fs, f, p, disksOnHost(t, f, host, 12), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !within(d12.TotalMBps(), 12*d1.TotalMBps(), 0.02) {
		t.Errorf("random 4K: 12 disks = %.2f, want 12x single (%.2f)", d12.TotalMBps(), d1.TotalMBps())
	}
}

func TestDuplexHeadline(t *testing.T) {
	// Half the disks reading + half writing 4MB streams reach ~540 MB/s
	// per port and ~2160 MB/s across the deploy unit's four hosts
	// (§VII-A, the paper's duplex methodology).
	f, fs := newFlowRig(t)
	p := disk.DT01ACA300()
	res, err := RunFluidSplit(fs, f, p, f.Disks(), 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !within(res.TotalMBps(), 2160, 0.03) {
		t.Errorf("unit duplex total = %.0f MB/s, paper ~2160", res.TotalMBps())
	}
	perPort := res.TotalMBps() / 4
	if !within(perPort, 540, 0.03) {
		t.Errorf("per-port duplex = %.0f MB/s, paper ~540", perPort)
	}
	// Directions are balanced.
	if !within(res.ReadBps, res.WriteBps, 0.05) {
		t.Errorf("unbalanced duplex: read %.0f vs write %.0f MB/s", res.ReadBps/1e6, res.WriteBps/1e6)
	}
	// All flows stopped afterwards.
	if fs.Flows() != 0 {
		t.Fatalf("leaked %d flows", fs.Flows())
	}
}

func TestFluidFairShareAcrossDisks(t *testing.T) {
	f, fs := newFlowRig(t)
	p := disk.DT01ACA300()
	spec := Spec{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential}
	host := f.Hosts()[0]
	disks := disksOnHost(t, f, host, 4)
	res, err := RunFluid(fs, f, p, disks, spec)
	if err != nil {
		t.Fatal(err)
	}
	// "the bandwidth is shared evenly among the disks" (§VII-A).
	var first float64
	for _, d := range disks {
		r := res.PerDisk[d]
		if first == 0 {
			first = r
			continue
		}
		if !within(r, first, 0.01) {
			t.Fatalf("uneven share: %v", res.PerDisk)
		}
	}
}

func TestRunFluidBrokenPath(t *testing.T) {
	f, fs := newFlowRig(t)
	p := disk.DT01ACA300()
	if err := f.Fail(fabric.DiskID(0)); err != nil {
		t.Fatal(err)
	}
	_, err := RunFluid(fs, f, p, []fabric.NodeID{fabric.DiskID(0)},
		Spec{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential})
	if err == nil {
		t.Fatal("fluid run over broken path succeeded")
	}
}

func TestAvgServiceTimeAsymmetricMix(t *testing.T) {
	// A 75%-read mix must sit between the pure-read and 50% mixed rates.
	p := disk.DT01ACA300()
	mk := func(pct int) float64 {
		return Spec{Size: 4 << 10, ReadPct: pct, Pattern: disk.Sequential}.IOPS(p, disk.AttachSATA)
	}
	pure, threeQ, half := mk(100), mk(75), mk(50)
	if !(half < threeQ && threeQ < pure) {
		t.Fatalf("mix ordering violated: 100%%=%.0f 75%%=%.0f 50%%=%.0f", pure, threeQ, half)
	}
}

func TestIOPSMatchesAvgServiceTime(t *testing.T) {
	p := disk.DT01ACA300()
	for _, spec := range PaperWorkloads() {
		iops := spec.IOPS(p, disk.AttachUSB)
		want := 1 / spec.AvgServiceTime(p, disk.AttachUSB).Seconds()
		if !within(iops, want, 1e-9) {
			t.Fatalf("%s: IOPS %.2f != 1/svc %.2f", spec, iops, want)
		}
	}
}
