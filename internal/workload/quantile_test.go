package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestP2QuantileAccuracy feeds known distributions and requires the P²
// estimate to land within a few percent of the exact quantile.
func TestP2QuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 1000 },
		"exponential": func() float64 { return rng.ExpFloat64() * 100 },
		"bimodal": func() float64 {
			if rng.Float64() < 0.9 {
				return 10 + rng.Float64()
			}
			return 500 + 50*rng.Float64()
		},
	}
	for name, draw := range dists {
		for _, p := range []float64{0.5, 0.99} {
			est := NewP2Quantile(p)
			samples := make([]float64, 0, 50000)
			for i := 0; i < 50000; i++ {
				x := draw()
				est.Observe(x)
				samples = append(samples, x)
			}
			sort.Float64s(samples)
			exact := samples[int(float64(len(samples))*p)]
			got := est.Value()
			// Tolerance relative to the distribution's scale, not the
			// quantile itself (bimodal p50 sits in a dense cluster).
			scale := samples[len(samples)-1] - samples[0]
			if diff := got - exact; diff < -0.05*scale || diff > 0.05*scale {
				t.Errorf("%s p%g: estimate %.2f vs exact %.2f (scale %.2f)",
					name, p*100, got, exact, scale)
			}
		}
	}
}

// TestP2QuantileSmallStreams: fewer than 5 samples fall back to the exact
// floor-index convention sloRow uses.
func TestP2QuantileSmallStreams(t *testing.T) {
	if got := NewP2Quantile(0.99).Value(); got != 0 {
		t.Fatalf("empty estimator Value = %v, want 0", got)
	}
	est := NewP2Quantile(0.5)
	for _, x := range []float64{30, 10, 20} {
		est.Observe(x)
	}
	if got := est.Value(); got != 20 {
		t.Fatalf("3-sample median = %v, want 20", got)
	}
}

// TestP2QuantileDeterministic: identical observation sequences produce
// bit-identical estimates.
func TestP2QuantileDeterministic(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(7))
		est := NewP2Quantile(0.999)
		for i := 0; i < 20000; i++ {
			est.Observe(rng.ExpFloat64())
		}
		return est.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same sequence, different estimates: %v vs %v", a, b)
	}
}

// TestPhaseQuantilesMaxExact: the streaming row's max matches the largest
// observation exactly.
func TestPhaseQuantilesMaxExact(t *testing.T) {
	pq := newPhaseQuantiles()
	var max time.Duration
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Second)))
		pq.observe(d)
		if d > max {
			max = d
		}
	}
	if pq.max != max {
		t.Fatalf("streaming max %v != exact %v", pq.max, max)
	}
}
