package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// samplePool recycles the per-(class, phase) latency sample slices. A large
// tenant population completes millions of requests per phase, and the
// append-grown backing arrays dominate the engine's allocations (flagged in
// ROADMAP item 2 as a blocker for 1M-tenant runs); they are dead the moment
// the report rows are built, so the engine returns them here and the next
// run — or the next seed of a sweep, on any worker — starts with grown
// capacity instead of re-paying the growth path. Pooling never changes
// results: slices are handed out empty and consumed fully before release.
var samplePool = sync.Pool{New: func() any { return new([]time.Duration) }}

// getSampleSlice returns an empty latency slice, reusing whatever capacity
// a previous run grew.
func getSampleSlice() []time.Duration {
	return (*samplePool.Get().(*[]time.Duration))[:0]
}

// putSampleSlice returns a slice's backing array to the pool. The caller
// must not touch s afterwards.
func putSampleSlice(s []time.Duration) {
	samplePool.Put(&s)
}

// Phase names, in timeline order. Warmup samples are reported but excluded
// from acceptance comparisons; quiescent is the baseline the storm phase is
// judged against.
const (
	PhaseWarmup    = "warmup"
	PhaseQuiescent = "quiescent"
	PhaseStorm     = "storm"
	PhaseDrain     = "drain"
)

// Phases lists the traffic phases in timeline order.
var Phases = []string{PhaseWarmup, PhaseQuiescent, PhaseStorm, PhaseDrain}

// Request outcomes. Latency samples cover ok and error (a request that
// burned its whole retry budget is tail latency, not a free pass); shed and
// throttled requests were refused before consuming disk time and are
// counted separately.
const (
	OutcomeOK        = "ok"
	OutcomeError     = "error"
	OutcomeShed      = "shed"
	OutcomeThrottled = "throttled"
)

// ClassSLO is one tenant class's outcome during one phase. Percentiles are
// exact (computed from the full sorted sample set, not histogram buckets)
// over completed requests — ok and error both count, at their full elapsed
// time from arrival to final outcome.
type ClassSLO struct {
	Class     string
	Phase     string
	Total     int
	OK        int
	Errors    int
	Shed      int
	Throttled int
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
}

// SLOReport is the per-tenant-class outcome of a traffic run, plus the
// power/protection summary. Its Text rendering is byte-stable for a given
// seed and option set, so goldens and same-seed comparisons can diff it.
type SLOReport struct {
	Seed      int64
	Protected bool
	Storm     bool
	Rows      []ClassSLO

	// ActiveDisksMax is the high-water mark of simultaneously spinning
	// (or spinning-up) disks — the power-budget outcome. TotalDisks is
	// the denominator.
	ActiveDisksMax int
	TotalDisks     int
	// SpinUps / SpinDowns count disk motor starts/stops after setup
	// (setup's archival spin-down is excluded).
	SpinUps   int
	SpinDowns int
	// BreakerOpens counts server-side per-disk breaker trips (protected
	// runs only).
	BreakerOpens uint64
}

// Row returns the row for (class, phase), or a zero row if absent.
func (r *SLOReport) Row(class, phase string) ClassSLO {
	for _, row := range r.Rows {
		if row.Class == class && row.Phase == phase {
			return row
		}
	}
	return ClassSLO{Class: class, Phase: phase}
}

// onOff renders a bool the way the report header reads.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// ms renders a duration as fixed-point milliseconds (stable width-friendly
// form; exact percentiles are still available on the struct).
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// Text renders the report as a fixed-width table. The output is
// byte-identical across same-seed runs and worker counts — goldens diff it.
func (r *SLOReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenant SLO report: seed %d, storm %s, protection %s\n",
		r.Seed, onOff(r.Storm), onOff(r.Protected))
	fmt.Fprintf(&b, "  %-9s %-9s %7s %7s %6s %6s %6s %10s %10s %10s %10s\n",
		"class", "phase", "total", "ok", "err", "shed", "thr", "p50", "p99", "p999", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %-9s %7d %7d %6d %6d %6d %10s %10s %10s %10s\n",
			row.Class, row.Phase, row.Total, row.OK, row.Errors, row.Shed, row.Throttled,
			ms(row.P50), ms(row.P99), ms(row.P999), ms(row.Max))
	}
	fmt.Fprintf(&b, "  power: active disks max %d of %d, spin-ups %d, spin-downs %d, breaker opens %d\n",
		r.ActiveDisksMax, r.TotalDisks, r.SpinUps, r.SpinDowns, r.BreakerOpens)
	return b.String()
}

// quantile returns the exact q-per-mille quantile of samples (0 if empty):
// the element at floor index len*q/1000 of the sorted set, matching the
// chaos harness's p99 convention. Samples must be sorted ascending.
func quantile(sorted []time.Duration, perMille int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * perMille / 1000
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// sloRowStream builds one report row from a phase's outcome counts and its
// streaming quantile state (StreamingQuantiles runs).
func sloRowStream(class, phase string, counts map[string]int, pq *phaseQuantiles) ClassSLO {
	row := ClassSLO{
		Class:     class,
		Phase:     phase,
		OK:        counts[OutcomeOK],
		Errors:    counts[OutcomeError],
		Shed:      counts[OutcomeShed],
		Throttled: counts[OutcomeThrottled],
		P50:       time.Duration(pq.p50.Value()),
		P99:       time.Duration(pq.p99.Value()),
		P999:      time.Duration(pq.p999.Value()),
		Max:       pq.max,
	}
	row.Total = row.OK + row.Errors + row.Shed + row.Throttled
	return row
}

// sloRow builds one report row from a phase's outcome counts and completed
// latency samples (sorted in place).
func sloRow(class, phase string, counts map[string]int, samples []time.Duration) ClassSLO {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	row := ClassSLO{
		Class:     class,
		Phase:     phase,
		OK:        counts[OutcomeOK],
		Errors:    counts[OutcomeError],
		Shed:      counts[OutcomeShed],
		Throttled: counts[OutcomeThrottled],
		P50:       quantile(samples, 500),
		P99:       quantile(samples, 990),
		P999:      quantile(samples, 999),
		Max:       quantile(samples, 1000),
	}
	row.Total = row.OK + row.Errors + row.Shed + row.Throttled
	return row
}
