// Package archive is an erasure-coded archival object store built on
// UStore — the second flavour of upper-layer redundancy the paper expects
// (§IV-E delegates data recovery upward; §VIII cites erasure coding as the
// standard technique). Objects are split into k data shards plus m parity
// shards (Reed-Solomon, package ec) and placed on k+m UStore spaces that
// live on distinct disks, so any m concurrent disk or host losses leave
// every object readable — without UStore itself storing anything twice.
package archive

import (
	"errors"
	"fmt"

	"time"
	"ustore/internal/core"
	"ustore/internal/ec"

	"ustore/internal/simtime"
)

// degradedReadBudget bounds per-shard read retries: a shard that does not
// answer within it is treated as lost and served from parity instead.
const degradedReadBudget = 4 * time.Second

// Errors returned by the store.
var (
	// ErrNotOpen is returned before Open completes.
	ErrNotOpen = errors.New("archive: store not open")
	// ErrUnknownObject is returned for unknown object names.
	ErrUnknownObject = errors.New("archive: unknown object")
	// ErrObjectTooLarge is returned when an object exceeds stripe capacity.
	ErrObjectTooLarge = errors.New("archive: object too large")
)

// ClientFactory supplies the ClientLib for one shard slot. Each slot must
// use a distinct service name: the Master's same-service affinity rule
// would otherwise pack every shard onto one disk, destroying the failure
// independence erasure coding exists for.
type ClientFactory func(slot int) *core.ClientLib

// shardSlot is one of the store's k+m backing spaces.
type shardSlot struct {
	cl     *core.ClientLib
	space  core.SpaceID
	diskID string
	// next is the bump-allocation offset within the space.
	next int64
	size int64
}

// objectMeta records an object's placement.
type objectMeta struct {
	length   int64
	shardLen int64
	// offsets[i] is the shard's offset within slot i's space.
	offsets []int64
}

// Store is an erasure-coded object store over one UStore cluster.
type Store struct {
	factory ClientFactory
	sched   *simtime.Scheduler
	code    *ec.Code
	slots   []*shardSlot
	meta    map[string]*objectMeta
	open    bool

	// Reconstructions counts reads that needed parity (degraded reads).
	Reconstructions uint64
}

// New creates a store with RS(k, m) protection. factory supplies one
// ClientLib per shard slot (distinct service names per slot).
func New(factory ClientFactory, sched *simtime.Scheduler, k, m int) (*Store, error) {
	code, err := ec.New(k, m)
	if err != nil {
		return nil, err
	}
	return &Store{factory: factory, sched: sched, code: code, meta: make(map[string]*objectMeta)}, nil
}

// Open allocates the k+m backing spaces (each through its own slot client
// so the Master's affinity rule places them on distinct disks) and mounts
// them. done fires when the store is usable.
func (s *Store) Open(bytesPerSlot int64, done func(error)) {
	total := s.code.K() + s.code.M()
	var alloc func(i int)
	alloc = func(i int) {
		if i >= total {
			s.open = true
			done(nil)
			return
		}
		cl := s.factory(i)
		cl.Allocate(bytesPerSlot, func(rep core.AllocateReply, err error) {
			if err != nil {
				done(fmt.Errorf("allocating slot %d: %w", i, err))
				return
			}
			for _, prev := range s.slots {
				if prev.diskID == rep.DiskID {
					done(fmt.Errorf("archive: slot %d shares disk %s with another slot (need distinct disks)", i, rep.DiskID))
					return
				}
			}
			slot := &shardSlot{cl: cl, space: rep.Space, diskID: rep.DiskID, size: rep.Size}
			cl.Mount(rep.Space, func(err error) {
				if err != nil {
					done(fmt.Errorf("mounting slot %d: %w", i, err))
					return
				}
				s.slots = append(s.slots, slot)
				alloc(i + 1)
			})
		})
	}
	alloc(0)
}

// Slots returns the backing disk IDs, in shard order (tests and demos).
func (s *Store) Slots() []string {
	out := make([]string, len(s.slots))
	for i, sl := range s.slots {
		out[i] = sl.diskID
	}
	return out
}

// Put stores data under name: split, encode, write all k+m shards in
// parallel, succeed when every shard is durable.
func (s *Store) Put(name string, data []byte, done func(error)) {
	if !s.open {
		s.sched.After(0, func() { done(ErrNotOpen) })
		return
	}
	shards := s.code.Split(data)
	parity, err := s.code.Encode(shards)
	if err != nil {
		s.sched.After(0, func() { done(err) })
		return
	}
	all := append(append([][]byte(nil), shards...), parity...)
	shardLen := int64(len(shards[0]))
	meta := &objectMeta{length: int64(len(data)), shardLen: shardLen, offsets: make([]int64, len(all))}
	for i, slot := range s.slots {
		if slot.next+shardLen > slot.size {
			s.sched.After(0, func() { done(fmt.Errorf("%w: slot %d full", ErrObjectTooLarge, i)) })
			return
		}
		meta.offsets[i] = slot.next
		slot.next += shardLen
	}
	remaining := len(all)
	failed := false
	for i, shard := range all {
		i, shard := i, shard
		s.slots[i].cl.Write(s.slots[i].space, meta.offsets[i], shard, func(err error) {
			if failed {
				return
			}
			if err != nil {
				failed = true
				done(fmt.Errorf("writing shard %d: %w", i, err))
				return
			}
			remaining--
			if remaining == 0 {
				s.meta[name] = meta
				done(nil)
			}
		})
	}
}

// Get fetches name, reconstructing through parity if shards are
// unavailable (failed disks, crashed hosts mid-failover). done receives
// the object bytes.
func (s *Store) Get(name string, done func([]byte, error)) {
	meta, ok := s.meta[name]
	if !ok {
		s.sched.After(0, func() { done(nil, fmt.Errorf("%w: %s", ErrUnknownObject, name)) })
		return
	}
	total := s.code.K() + s.code.M()
	shards := make([][]byte, total)
	remaining := total
	finished := false
	finish := func() {
		if finished {
			return
		}
		finished = true
		present := 0
		missingData := false
		for i, sh := range shards {
			if sh != nil {
				present++
			} else if i < s.code.K() {
				missingData = true
			}
		}
		if present < s.code.K() {
			done(nil, fmt.Errorf("%w: only %d of %d shards readable", ec.ErrTooFewShards, present, s.code.K()))
			return
		}
		if missingData {
			s.Reconstructions++
			if err := s.code.Reconstruct(shards); err != nil {
				done(nil, err)
				return
			}
		}
		data, err := s.code.Join(shards[:s.code.K()], int(meta.length))
		done(data, err)
	}
	for i := 0; i < total; i++ {
		i := i
		s.slots[i].cl.ReadWithBudget(s.slots[i].space, meta.offsets[i], int(meta.shardLen), degradedReadBudget,
			func(data []byte, err error) {
				if err == nil {
					shards[i] = data
				}
				remaining--
				if remaining == 0 {
					finish()
				}
			})
	}
}

// Objects returns how many objects the store holds.
func (s *Store) Objects() int { return len(s.meta) }
