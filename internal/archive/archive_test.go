package archive

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"ustore/internal/core"
	"ustore/internal/fabric"
)

// rig boots a cluster with an open RS(4,2) archive store.
func rig(t *testing.T) (*core.Cluster, *Store) {
	t.Helper()
	cfg := core.DefaultConfig()
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(8 * time.Second)
	if c.ActiveMaster() == nil {
		t.Fatal("no active master")
	}
	// Host-aware placement: slot clients carry round-robin locality hints
	// so shards spread across hosts as well as disks (a host crash then
	// takes at most ceil((k+m)/hosts) = 2 shards, within m's tolerance).
	hosts := c.Fabric.Hosts()
	st, err := New(func(slot int) *core.ClientLib {
		host := hosts[slot%len(hosts)]
		return c.Client(fmt.Sprintf("%s-arch%d", host, slot), fmt.Sprintf("archive-slot%d", slot))
	}, c.Sched, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var openErr error = errors.New("pending")
	st.Open(8<<30, func(err error) { openErr = err })
	c.Settle(30 * time.Second)
	if openErr != nil {
		t.Fatalf("open: %v", openErr)
	}
	return c, st
}

func TestOpenPlacesSlotsOnDistinctDisks(t *testing.T) {
	_, st := rig(t)
	seen := map[string]bool{}
	for _, d := range st.Slots() {
		if seen[d] {
			t.Fatalf("duplicate backing disk %s: %v", d, st.Slots())
		}
		seen[d] = true
	}
	if len(seen) != 6 {
		t.Fatalf("slots = %v, want 6 distinct disks", st.Slots())
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, st := rig(t)
	objects := map[string][]byte{}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("/backup/obj%d", i)
		data := make([]byte, 100+i*3777)
		for j := range data {
			data[j] = byte(j*7 + i)
		}
		objects[name] = data
		var putErr error = errors.New("pending")
		st.Put(name, data, func(err error) { putErr = err })
		c.Settle(10 * time.Second)
		if putErr != nil {
			t.Fatalf("put %s: %v", name, putErr)
		}
	}
	if st.Objects() != 5 {
		t.Fatalf("objects = %d", st.Objects())
	}
	for name, want := range objects {
		var got []byte
		var getErr error = errors.New("pending")
		st.Get(name, func(b []byte, err error) { got, getErr = b, err })
		c.Settle(10 * time.Second)
		if getErr != nil {
			t.Fatalf("get %s: %v", name, getErr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted", name)
		}
	}
	if st.Reconstructions != 0 {
		t.Fatalf("healthy reads reconstructed %d times", st.Reconstructions)
	}
}

func TestGetUnknownObject(t *testing.T) {
	c, st := rig(t)
	var getErr error
	st.Get("/nope", func(_ []byte, err error) { getErr = err })
	c.Settle(time.Second)
	if !errors.Is(getErr, ErrUnknownObject) {
		t.Fatalf("err = %v", getErr)
	}
}

func TestDegradedReadAfterDiskFailure(t *testing.T) {
	c, st := rig(t)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 131)
	}
	var putErr error = errors.New("pending")
	st.Put("/x", data, func(err error) { putErr = err })
	c.Settle(10 * time.Second)
	if putErr != nil {
		t.Fatal(putErr)
	}
	// Fail the physical disk under shard 0 (bridge/disk failure unit) —
	// the §IV-E case UStore delegates upward.
	victim := st.Slots()[0]
	if err := c.Fabric.Fail(fabric.NodeID(victim)); err != nil {
		t.Fatal(err)
	}
	c.Binding.Resync()
	c.Settle(2 * time.Second)

	var got []byte
	var getErr error = errors.New("pending")
	st.Get("/x", func(b []byte, err error) { got, getErr = b, err })
	c.Settle(30 * time.Second)
	if getErr != nil {
		t.Fatalf("degraded get: %v", getErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstruction produced wrong bytes")
	}
	if st.Reconstructions != 1 {
		t.Fatalf("reconstructions = %d, want 1", st.Reconstructions)
	}
}

func TestDegradedReadDuringHostCrash(t *testing.T) {
	c, st := rig(t)
	data := make([]byte, 32<<10)
	for i := range data {
		data[i] = byte(i)
	}
	var putErr error = errors.New("pending")
	st.Put("/y", data, func(err error) { putErr = err })
	c.Settle(10 * time.Second)
	if putErr != nil {
		t.Fatal(putErr)
	}
	// Crash the host serving shard 0's disk and read IMMEDIATELY — before
	// failover completes, parity must carry the read.
	m := c.ActiveMaster()
	victimHost := m.DiskHost(st.Slots()[0])
	c.CrashHost(victimHost)
	var got []byte
	var getErr error = errors.New("pending")
	st.Get("/y", func(b []byte, err error) { got, getErr = b, err })
	c.Settle(30 * time.Second)
	if getErr != nil {
		t.Fatalf("get during crash: %v", getErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong bytes during crash window")
	}
}

func TestTooManyFailuresRefused(t *testing.T) {
	c, st := rig(t)
	data := make([]byte, 8<<10)
	var putErr error = errors.New("pending")
	st.Put("/z", data, func(err error) { putErr = err })
	c.Settle(10 * time.Second)
	if putErr != nil {
		t.Fatal(putErr)
	}
	// Fail 3 backing disks of an RS(4,2) stripe: Get must error, not
	// fabricate data.
	for _, d := range st.Slots()[:3] {
		if err := c.Fabric.Fail(fabric.NodeID(d)); err != nil {
			t.Fatal(err)
		}
	}
	c.Binding.Resync()
	c.Settle(2 * time.Second)
	var getErr error
	st.Get("/z", func(_ []byte, err error) { getErr = err })
	c.Settle(60 * time.Second)
	if getErr == nil {
		t.Fatal("get with 3 of 6 shards lost succeeded")
	}
}
