module ustore

go 1.22
