// Archive: an erasure-coded cold-object store over UStore. Objects are
// split RS(4,2) across six spaces on six distinct disks spread over the
// four hosts. The demo stores a batch of objects, fails one physical disk
// outright (the §IV-E case UStore delegates upward), crashes a host on top,
// and reads everything back through parity reconstruction — no replicas, no
// rebuild, 1.5x storage overhead instead of 3x.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ustore"
	"ustore/internal/archive"
	"ustore/internal/core"
	"ustore/internal/fabric"
)

func main() {
	cluster, err := ustore.NewCluster(ustore.DefaultConfig())
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Settle(ustore.BootTime)
	if cluster.ActiveMaster() == nil {
		log.Fatal("no active master")
	}
	say := func(format string, args ...any) {
		fmt.Printf("[t=%8s] %s\n",
			cluster.Sched.Now().Truncate(time.Millisecond), fmt.Sprintf(format, args...))
	}

	// RS(4,2): any two simultaneous disk/host losses are survivable.
	hosts := cluster.Fabric.Hosts()
	store, err := archive.New(func(slot int) *core.ClientLib {
		host := hosts[slot%len(hosts)]
		return cluster.Client(fmt.Sprintf("%s-arch%d", host, slot), fmt.Sprintf("archive-slot%d", slot))
	}, cluster.Sched, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	store.Open(16<<30, func(err error) {
		if err != nil {
			log.Fatalf("open: %v", err)
		}
	})
	cluster.Settle(30 * time.Second)
	say("archive open: RS(4,2) striped over disks %v", store.Slots())

	// Store a batch of cold objects.
	objects := map[string][]byte{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/vault/photo-%03d.raw", i)
		data := make([]byte, 256<<10)
		for j := range data {
			data[j] = byte(j*13 + i*7)
		}
		objects[name] = data
		store.Put(name, data, func(err error) {
			if err != nil {
				log.Fatalf("put %s: %v", name, err)
			}
		})
		cluster.Settle(5 * time.Second)
	}
	say("stored %d objects (%.1f MB user data, 1.5x raw overhead)", store.Objects(), 8*0.25)

	// Disaster one: a disk dies outright.
	deadDisk := store.Slots()[1]
	say("DISK FAILURE: %s (bridge+disk failure unit, §IV-E)", deadDisk)
	if err := cluster.Fabric.Fail(fabric.NodeID(deadDisk)); err != nil {
		log.Fatal(err)
	}
	cluster.Binding.Resync()
	cluster.Settle(2 * time.Second)

	// Disaster two: a host crashes while we read.
	victimHost := cluster.ActiveMaster().DiskHost(store.Slots()[2])
	say("HOST CRASH: %s (while reads are in flight)", victimHost)
	cluster.CrashHost(victimHost)

	ok := 0
	for name, want := range objects {
		name, want := name, want
		store.Get(name, func(got []byte, err error) {
			if err != nil {
				log.Fatalf("get %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				log.Fatalf("%s corrupted", name)
			}
			ok++
		})
		cluster.Settle(15 * time.Second)
	}
	say("read back %d/%d objects intact; %d degraded reads served from parity",
		ok, len(objects), store.Reconstructions)
	say("UStore provided raw switched capacity; the archive layer provided durability — the paper's division of labour")
}
