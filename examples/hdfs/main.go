// HDFS-on-UStore: the §VII-B experiment as a runnable demo. A 3-replica
// HDFS-like file service is deployed over UStore volumes (namenode on h1,
// datanodes on h2-h4). Mid-write, the Master deliberately switches the
// disk group backing one datanode to a different host. The write stalls
// for a few seconds while the datanode's ClientLib remounts, then resumes;
// a read-back afterwards is untouched because replicas mask the moved disk.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ustore"
	"ustore/internal/core"
	"ustore/internal/fabric"
	"ustore/internal/hdfs"
)

func main() {
	cluster, err := ustore.NewCluster(ustore.DefaultConfig())
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Settle(ustore.BootTime)
	if cluster.ActiveMaster() == nil {
		log.Fatal("no active master")
	}
	say := func(format string, args ...any) {
		fmt.Printf("[t=%8s] %s\n",
			cluster.Sched.Now().Truncate(time.Millisecond), fmt.Sprintf(format, args...))
	}

	// Deploy HDFS: namenode on h1, datanodes on h2-h4 (the paper's
	// split), three replicas.
	hdfs.NewNameNode(cluster.Net, "h1")
	var dataNodes []*hdfs.DataNode
	var dnClients []*ustore.ClientLib
	for _, host := range []string{"h2", "h3", "h4"} {
		cl := cluster.Client(host+"-dn", "hdfs-"+host)
		dn := hdfs.NewDataNode(cluster.Net, host, "h1", cl)
		dn.Start(64<<30, func(err error) {
			if err != nil {
				log.Fatalf("datanode %s: %v", host, err)
			}
		})
		cluster.Settle(5 * time.Second)
		dataNodes = append(dataNodes, dn)
		dnClients = append(dnClients, cl)
		say("datanode %s up, volume %s", host, dn.Space())
	}
	client := hdfs.NewClient(cluster.Net, "writer", "h1")

	// Start a 64MB write (16 blocks, 3-way replicated).
	data := make([]byte, 16*hdfs.BlockSize)
	for i := range data {
		data[i] = byte(i * 2654435761)
	}
	start := cluster.Sched.Now()
	client.WriteFile("/backup/2026-07-06.tar", data, func(err error) {
		if err != nil {
			log.Fatalf("write: %v", err)
		}
		say("write finished in %s (stalls: %d)",
			(cluster.Sched.Now() - start).Truncate(10*time.Millisecond), client.WriteStalls)
	})

	// Mid-write, switch the disk group under the first datanode.
	cluster.Settle(500 * time.Millisecond)
	space := dataNodes[0].Space()
	var backing ustore.LookupReply
	dnClients[0].Lookup(space, func(rep ustore.LookupReply, err error) {
		if err != nil {
			log.Fatalf("lookup: %v", err)
		}
		backing = rep
	})
	cluster.Settle(time.Second)
	var dst string
	for _, h := range cluster.Fabric.Hosts() {
		if h != backing.Host {
			dst = h
			break
		}
	}
	cmd := core.ExecuteArgs{Force: true}
	for _, group := range cluster.Fabric.CoMovingGroups() {
		for _, d := range group {
			if string(d) == backing.DiskID {
				for _, member := range group {
					cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: member, Host: dst})
				}
			}
		}
	}
	say("switching %s's disk group (%d disks) from %s to %s mid-write",
		dataNodes[0].Space(), len(cmd.Pairs), backing.Host, dst)
	cluster.ActiveMaster().ExecuteTopology(cmd, func(err error) {
		if err != nil {
			log.Fatalf("switch: %v", err)
		}
		say("controller verified the switch")
	})

	cluster.Settle(3 * time.Minute)
	remounts := uint64(0)
	for _, cl := range dnClients {
		remounts += cl.Remounts
	}
	say("datanode transparent remounts during the switch: %d", remounts)

	// Read back: replicas mask everything; bytes are intact.
	client.ReadFile("/backup/2026-07-06.tar", func(got []byte, err error) {
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			log.Fatal("data mismatch after switch")
		}
		say("read back %d bytes intact — reads uninterrupted, as §VII-B reports", len(got))
	})
	cluster.Settle(time.Minute)
}
