// Failover: the paper's headline availability demo. A backup service
// streams data into UStore while one of the four hosts crashes. The Master
// detects the silence, commands the Controller to re-home the dead host's
// disks through the fat-tree switches, the disks re-enumerate on surviving
// hosts, and the client's ClientLib remounts transparently — recovery in
// seconds (paper: 5.8s), with zero data rebuilt over the network.
package main

import (
	"fmt"
	"log"
	"time"

	"ustore"
)

func main() {
	cfg := ustore.DefaultConfig()
	cluster, err := ustore.NewCluster(cfg)
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Settle(ustore.BootTime)
	master := cluster.ActiveMaster()
	if master == nil {
		log.Fatal("no active master")
	}
	say := func(format string, args ...any) {
		fmt.Printf("[t=%8s] %s\n",
			cluster.Sched.Now().Truncate(time.Millisecond), fmt.Sprintf(format, args...))
	}

	// The backup service allocates a volume and streams 4MB chunks.
	client := cluster.Client("backup-agent", "nightly-backup")
	var alloc ustore.AllocateReply
	client.Allocate(8<<30, func(rep ustore.AllocateReply, err error) {
		if err != nil {
			log.Fatalf("allocate: %v", err)
		}
		alloc = rep
	})
	cluster.Settle(2 * time.Second)
	client.Mount(alloc.Space, func(err error) {
		if err != nil {
			log.Fatalf("mount: %v", err)
		}
	})
	cluster.Settle(time.Second)
	say("backup volume %s on host %s", alloc.Space, alloc.Host)

	client.OnMount = func(ev ustore.MountEvent) {
		if ev.Remounted {
			say("ClientLib: transparently remounted on %s", ev.Host)
		}
	}
	master.OnHostDead = func(h string) { say("Master: host %s declared dead (missed heartbeats)", h) }
	master.OnFailoverDone = func(h string, took time.Duration) {
		say("Master: %s's disks re-homed + re-exported in %s", h, took.Truncate(10*time.Millisecond))
	}

	// Stream chunks; each write retries internally across the failover.
	chunk := make([]byte, 4<<20)
	written := 0
	var stalled time.Duration
	var writeNext func(off int64)
	writeNext = func(off int64) {
		if off+int64(len(chunk)) > alloc.Size {
			say("backup complete: %d chunks, total stall %s", written, stalled.Truncate(10*time.Millisecond))
			return
		}
		start := cluster.Sched.Now()
		client.Write(alloc.Space, off, chunk, func(err error) {
			if err != nil {
				log.Fatalf("write at %d: %v", off, err)
			}
			took := cluster.Sched.Now() - start
			if took > time.Second {
				stalled += took
				say("chunk %d stalled %s (failover window)", written, took.Truncate(10*time.Millisecond))
			}
			written++
			writeNext(off + int64(len(chunk)))
		})
	}
	writeNext(0)

	// Crash the serving host mid-stream.
	cluster.Sched.After(5*time.Second, func() {
		say("CRASH: killing host %s", alloc.Host)
		cluster.CrashHost(alloc.Host)
	})

	cluster.Settle(10 * time.Minute)
	say("final placement:")
	for _, h := range cluster.Fabric.Hosts() {
		say("  %s: %d disks", h, cluster.DiskCountOn(h))
	}
	if got := client.MountedOn(alloc.Space); got == alloc.Host {
		log.Fatal("still mounted on the dead host")
	} else {
		say("volume now served by %s; %d transparent remounts", got, client.Remounts)
	}
}
