// Quickstart: boot a simulated UStore deploy unit, allocate storage, mount
// it, and do block IO through the ClientLib — the minimal end-to-end tour
// of the public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"ustore"
)

func main() {
	// The paper's prototype: 16 disks, 4 hosts, 4-port hubs, 3 Master
	// replicas on Paxos. Everything runs on a virtual clock.
	cfg := ustore.DefaultConfig()
	cluster, err := ustore.NewCluster(cfg)
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Settle(ustore.BootTime) // USB enumeration + elections
	master := cluster.ActiveMaster()
	if master == nil {
		log.Fatal("no active master elected")
	}
	fmt.Printf("cluster up: active master %s, %d disks across %d hosts\n",
		master.Name(), len(cluster.Disks), len(cluster.Fabric.Hosts()))

	// A client working for the "photos" service asks for 1 GiB.
	client := cluster.Client("app1", "photos")
	var alloc ustore.AllocateReply
	client.Allocate(1<<30, func(rep ustore.AllocateReply, err error) {
		if err != nil {
			log.Fatalf("allocate: %v", err)
		}
		alloc = rep
	})
	cluster.Settle(2 * time.Second)
	fmt.Printf("allocated %s: %d bytes on %s via host %s\n",
		alloc.Space, alloc.Size, alloc.DiskID, alloc.Host)

	// Mount it (iSCSI-style login under the hood) and write/read.
	client.Mount(alloc.Space, func(err error) {
		if err != nil {
			log.Fatalf("mount: %v", err)
		}
	})
	cluster.Settle(time.Second)

	payload := []byte("cold data: written once, read rarely, kept forever")
	client.Write(alloc.Space, 0, payload, func(err error) {
		if err != nil {
			log.Fatalf("write: %v", err)
		}
		client.Read(alloc.Space, 0, len(payload), func(data []byte, err error) {
			if err != nil {
				log.Fatalf("read: %v", err)
			}
			if !bytes.Equal(data, payload) {
				log.Fatal("read back different bytes")
			}
			fmt.Printf("round trip ok: %q\n", data)
		})
	})
	cluster.Settle(5 * time.Second)

	// Storage management: the owning service can spin its disk down when
	// it knows the workload has gone cold (§IV-F).
	client.SetDiskPower(alloc.DiskID, false, func(err error) {
		if err != nil {
			log.Fatalf("spin down: %v", err)
		}
	})
	cluster.Settle(3 * time.Second)
	fmt.Printf("disk %s state: %v (spun down on request)\n",
		alloc.DiskID, cluster.Disks[alloc.DiskID].State())

	// Accessing cold data spins it back up automatically; the client just
	// sees a slow first read.
	start := cluster.Sched.Now()
	client.Read(alloc.Space, 0, 8, func(data []byte, err error) {
		if err != nil {
			log.Fatalf("cold read: %v", err)
		}
		fmt.Printf("cold read served in %v (includes spin-up)\n",
			(cluster.Sched.Now() - start).Truncate(time.Millisecond))
	})
	cluster.Settle(15 * time.Second)
}
