// Powersave: UStore's §IV-F power management under a diurnal cold-storage
// workload. Disks idle past the threshold spin down; bursts of accesses
// spin them back up (and the adaptive policy raises the threshold for
// thrashing disks); a power meter integrates the unit's energy so the
// always-on vs managed difference is visible in watt-hours.
package main

import (
	"fmt"
	"log"
	"time"

	"ustore"
	"ustore/internal/disk"
	"ustore/internal/power"
)

func main() {
	// Enable the EndPoint power manager with a 60s idle threshold.
	cfg := ustore.DefaultConfig()
	cfg.SpinDownIdle = 60 * time.Second
	cluster, err := ustore.NewCluster(cfg)
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Settle(ustore.BootTime)
	if cluster.ActiveMaster() == nil {
		log.Fatal("no active master")
	}
	say := func(format string, args ...any) {
		fmt.Printf("[t=%9s] %s\n",
			cluster.Sched.Now().Truncate(time.Millisecond), fmt.Sprintf(format, args...))
	}

	// Meter every disk (disk + its USB bridge, Table III calibration).
	meter := power.NewMeter(func() time.Duration { return cluster.Sched.Now() })
	for id, d := range cluster.Disks {
		meter.TrackDisk(id, d)
	}
	// Static components: hubs at their active draw, fans, host adaptors.
	meter.SetDraw("fabric+fans+adaptors", 13.6+6+10)

	// One archival service with a mounted volume.
	client := cluster.Client("archive", "archive-svc")
	var alloc ustore.AllocateReply
	client.Allocate(4<<30, func(rep ustore.AllocateReply, err error) {
		if err != nil {
			log.Fatalf("allocate: %v", err)
		}
		alloc = rep
	})
	cluster.Settle(2 * time.Second)
	client.Mount(alloc.Space, func(err error) {
		if err != nil {
			log.Fatalf("mount: %v", err)
		}
	})
	cluster.Settle(time.Second)

	// Diurnal pattern: a burst of reads every 30 minutes, quiet otherwise.
	buf := make([]byte, 1<<20)
	client.Write(alloc.Space, 0, buf, func(error) {})
	for hour := 0; hour < 4; hour++ {
		for _, burst := range []time.Duration{0, 30 * time.Minute} {
			at := time.Duration(hour)*time.Hour + burst + 10*time.Minute
			cluster.Sched.At(at, func() {
				start := cluster.Sched.Now()
				client.Read(alloc.Space, 0, 1<<20, func(_ []byte, err error) {
					if err != nil {
						say("burst read error: %v", err)
						return
					}
					say("burst read served in %v", (cluster.Sched.Now() - start).Truncate(time.Millisecond))
				})
			})
		}
	}

	// Narrate the fleet's spin state every hour.
	cluster.Sched.Every(time.Hour, func() {
		spun, idle := 0, 0
		for _, d := range cluster.Disks {
			switch d.State() {
			case disk.StateSpunDown:
				spun++
			case disk.StateIdle:
				idle++
			}
		}
		say("fleet: %d spun down, %d idle — drawing %.1f W", spun, idle, meter.Watts())
	})

	cluster.Settle(4 * time.Hour)
	managed := meter.EnergyWh()

	// Reference: the same 4 hours with every disk idling (Table III idle
	// draw + bridge for 16 disks + statics).
	alwaysOnWatts := 16*power.DiskWithBridgeWatts(ustore.DT01ACA300(), disk.StateIdle) + 13.6 + 6 + 10
	alwaysOn := alwaysOnWatts * 4 // 4 hours -> Wh
	say("energy over 4h: managed %.0f Wh vs always-on %.0f Wh (%.0f%% saved)",
		managed, alwaysOn, 100*(1-managed/alwaysOn))

	// Per-disk adaptive thresholds after the bursty period.
	pm := cluster.EndPoints[alloc.Host].PowerManager()
	if pm != nil {
		say("power manager issued %d spin-downs; threshold for %s now %s",
			pm.SpinDowns, alloc.DiskID, pm.Threshold(alloc.DiskID))
	}
}
