package ustore

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment through the internal/bench harness and reports
// the headline quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as the reproduction run. EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"testing"
	"time"

	"ustore/internal/bench"
	"ustore/internal/cost"
	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/power"
	"ustore/internal/workload"
)

// BenchmarkTableICost regenerates Table I (CapEx of 10PB, five solutions).
func BenchmarkTableICost(b *testing.B) {
	var ustoreCapEx, backblazeCapEx float64
	for i := 0; i < b.N; i++ {
		for _, rep := range cost.TableI() {
			switch rep.Solution {
			case "UStore":
				ustoreCapEx = float64(rep.CapEx)
			case "BACKBLAZE":
				backblazeCapEx = float64(rep.CapEx)
			}
		}
	}
	b.ReportMetric(ustoreCapEx/1000, "UStore_CapEx_$k")
	b.ReportMetric(cost.Savings(cost.Money(ustoreCapEx), cost.Money(backblazeCapEx))*100, "saving_vs_backblaze_%")
}

// BenchmarkTableIISingleDisk regenerates Table II: one disk over SATA, a
// bare USB bridge, and the full hub+switch fabric.
func BenchmarkTableIISingleDisk(b *testing.B) {
	specs := workload.PaperWorkloads()
	var fabric4KSeqRead float64
	for i := 0; i < b.N; i++ {
		for _, ic := range []disk.Interconnect{disk.AttachSATA, disk.AttachUSB, disk.AttachFabric} {
			for _, spec := range specs {
				v := bench.TableIICell(ic, spec)
				if ic == disk.AttachFabric && spec.String() == "4K-SR" {
					fabric4KSeqRead = v
				}
			}
		}
	}
	b.ReportMetric(fabric4KSeqRead, "H&S_4K-SR_IOPS") // paper: 5381
}

// BenchmarkFigure5Scaling regenerates Figure 5: aggregate throughput vs
// number of disks on one host.
func BenchmarkFigure5Scaling(b *testing.B) {
	var eight, twelve float64
	spec := workload.Spec{Size: 4 << 10, ReadPct: 100, Pattern: disk.Sequential}
	for i := 0; i < b.N; i++ {
		var err error
		eight, err = bench.Figure5Point(spec, 8)
		if err != nil {
			b.Fatal(err)
		}
		twelve, err = bench.Figure5Point(spec, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eight/1, "4K-SR_8disks_MBps")
	b.ReportMetric(twelve/1, "4K-SR_12disks_MBps") // flat vs 8: tree saturated
}

// BenchmarkDuplexThroughput regenerates the §VII-A headline: ~540 MB/s per
// port, ~2160 MB/s per deploy unit with half reads, half writes.
func BenchmarkDuplexThroughput(b *testing.B) {
	var unit float64
	for i := 0; i < b.N; i++ {
		tab := bench.DuplexHeadline()
		if len(tab.Rows) == 2 {
			var v float64
			_, err := fmt.Sscan(tab.Rows[1][1], &v)
			if err == nil {
				unit = v
			}
		}
	}
	b.ReportMetric(unit, "unit_MBps") // paper: 2160
}

// BenchmarkFigure6Switching regenerates Figure 6: switching time and its
// three components vs number of disks switched.
func BenchmarkFigure6Switching(b *testing.B) {
	var one, twelve bench.SwitchParts
	for i := 0; i < b.N; i++ {
		var err error
		one, err = bench.MeasureSwitch(1, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		twelve, err = bench.MeasureSwitch(12, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(one.Total().Seconds(), "switch_1disk_s")
	b.ReportMetric(twelve.Total().Seconds(), "switch_12disks_s")
	b.ReportMetric(twelve.Part1.Seconds()-one.Part1.Seconds(), "part1_growth_s")
}

// BenchmarkHostFailover regenerates the 5.8-second single-host-failure
// recovery headline.
func BenchmarkHostFailover(b *testing.B) {
	var took time.Duration
	for i := 0; i < b.N; i++ {
		var err error
		took, err = bench.MeasureFailover(int64(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(took.Seconds(), "recovery_s") // paper: 5.8
}

// BenchmarkTableIIIDiskPower regenerates Table III (one-disk power by
// state and attachment).
func BenchmarkTableIIIDiskPower(b *testing.B) {
	p := disk.DT01ACA300()
	var bridgeActive float64
	for i := 0; i < b.N; i++ {
		bridgeActive = power.DiskWithBridgeWatts(p, disk.StateActive)
	}
	b.ReportMetric(bridgeActive, "USB_bridge_RW_W") // paper: 7.56
}

// BenchmarkTableIVHubPower regenerates Table IV (hub power vs connected
// disks).
func BenchmarkTableIVHubPower(b *testing.B) {
	var four float64
	for i := 0; i < b.N; i++ {
		four = power.HubWatts(4)
	}
	b.ReportMetric(four, "hub_4disks_W") // paper: 1.67
}

// BenchmarkTableVSolutionPower regenerates Table V (16-disk solution power
// in spinning and powered-off states).
func BenchmarkTableVSolutionPower(b *testing.B) {
	p := disk.DT01ACA300()
	var spin, off float64
	for i := 0; i < b.N; i++ {
		f, err := fabric.Prototype()
		if err != nil {
			b.Fatal(err)
		}
		states := make(map[fabric.NodeID]disk.State)
		for _, d := range f.Disks() {
			states[d] = disk.StateActive
		}
		spin = power.UnitPower(f, p, states, 6, 1).WallW
		for _, d := range f.Disks() {
			states[d] = disk.StatePoweredOff
		}
		off = power.UnitPower(f, p, states, 6, 1).WallW
	}
	b.ReportMetric(spin, "UStore_spinning_W")   // paper: 166.8
	b.ReportMetric(off, "UStore_powered_off_W") // paper: 22.1
}

// BenchmarkHDFSSwitch regenerates the §VII-B experiment (HDFS write across
// a disk switch).
func BenchmarkHDFSSwitch(b *testing.B) {
	var stalls float64
	for i := 0; i < b.N; i++ {
		tab := bench.HDFSSwitch(nil)
		for _, row := range tab.Rows {
			if row[0] == "datanode transparent remounts" {
				var v float64
				if _, err := fmt.Sscan(row[1], &v); err == nil {
					stalls = v
				}
			}
		}
	}
	b.ReportMetric(stalls, "dn_remounts")
}

// BenchmarkRebuildOffload regenerates the §IV-E rebuild-offload ablation
// and reports network bytes saved by switching the source disk first.
func BenchmarkRebuildOffload(b *testing.B) {
	var savedMB float64
	for i := 0; i < b.N; i++ {
		tab := bench.AblateRebuild()
		if len(tab.Rows) != 2 {
			b.Fatalf("rebuild ablation rows: %d", len(tab.Rows))
		}
		var network, offload float64
		if _, err := fmt.Sscan(tab.Rows[0][1], &network); err != nil {
			b.Fatal(err)
		}
		if _, err := fmt.Sscan(tab.Rows[1][1], &offload); err != nil {
			b.Fatal(err)
		}
		savedMB = network - offload
	}
	b.ReportMetric(savedMB, "network_MB_saved")
}

// BenchmarkAvailabilitySoak runs the accelerated-aging availability soak.
func BenchmarkAvailabilitySoak(b *testing.B) {
	var avail float64
	for i := 0; i < b.N; i++ {
		tab := bench.AblateAvailability()
		for _, row := range tab.Rows {
			if row[0] == "UStore availability" {
				if _, err := fmt.Sscanf(row[1], "%f%%", &avail); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(avail, "availability_%")
}

// BenchmarkAblations runs the design-choice studies.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tab := range bench.Ablations() {
			if len(tab.Rows) == 0 {
				b.Fatalf("ablation %s empty", tab.ID)
			}
		}
	}
}

// BenchmarkClusterBoot measures how fast the simulator boots the full
// prototype (simulation performance, not a paper number).
func BenchmarkClusterBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Seed = int64(i + 1)
		c, err := NewCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c.Settle(BootTime)
		if c.ActiveMaster() == nil {
			b.Fatal("no active master")
		}
	}
}
