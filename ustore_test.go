package ustore

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the facade exactly as the README shows:
// boot, allocate, mount, write, read, power-manage.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Settle(BootTime)
	if cluster.ActiveMaster() == nil {
		t.Fatal("no active master")
	}

	client := cluster.Client("app1", "photos")
	var alloc AllocateReply
	var fail error = errors.New("pending")
	client.Allocate(1<<30, func(rep AllocateReply, err error) { alloc, fail = rep, err })
	cluster.Settle(3 * time.Second)
	if fail != nil {
		t.Fatalf("allocate: %v", fail)
	}
	client.Mount(alloc.Space, func(err error) { fail = err })
	cluster.Settle(3 * time.Second)
	if fail != nil {
		t.Fatalf("mount: %v", fail)
	}
	payload := []byte("public api payload")
	var got []byte
	client.Write(alloc.Space, 0, payload, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
			return
		}
		client.Read(alloc.Space, 0, len(payload), func(b []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = b
		})
	})
	cluster.Settle(5 * time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q", got)
	}

	// Power management through the facade.
	client.SetDiskPower(alloc.DiskID, false, func(err error) { fail = err })
	cluster.Settle(3 * time.Second)
	if fail != nil {
		t.Fatalf("spin down: %v", fail)
	}
	if st := cluster.Disks[alloc.DiskID].State().String(); st != "spun-down" {
		t.Fatalf("disk state = %s", st)
	}
}

// TestFacadeTypesUsable ensures the re-exported types compose (a compile-
// time-ish check that the aliases stay aligned with internal/core).
func TestFacadeTypesUsable(t *testing.T) {
	var cmd ExecuteArgs
	cmd.Pairs = append(cmd.Pairs, DiskHost{Disk: "disk00", Host: "h1"})
	if len(cmd.Pairs) != 1 {
		t.Fatal("ExecuteArgs alias broken")
	}
	p := DT01ACA300()
	if p.CapacityBytes != 3_000_000_000_000 {
		t.Fatalf("disk params = %d", p.CapacityBytes)
	}
	var fc FabricConfig
	fc.Disks = 16
	var ev MountEvent
	_ = ev.Remounted
	var lr LookupReply
	_ = lr.Host
	if BootTime < 5*time.Second {
		t.Fatal("BootTime too short for enumeration + elections")
	}
}
